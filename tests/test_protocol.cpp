#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "fleet/metrics.hpp"
#include "obs/invariants.hpp"
#include "serve/client.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/transport.hpp"

namespace vmp::serve {
namespace {

Snapshot synthetic_at(double t) {
  Snapshot snapshot;
  snapshot.tick = static_cast<std::uint64_t>(t);
  snapshot.time_s = t;
  snapshot.vms = {{0, 1, 1, t, 10.0 * t}, {1, 4, 2, 2.0 * t, 20.0 * t}};
  snapshot.tenants = {{1, t, 100.0 * t}, {2, 2.0 * t, 200.0 * t}};
  snapshot.total_power_w = 3.0 * t;
  snapshot.total_energy_j = 300.0 * t;
  return snapshot;
}

Request make_request(QueryKind kind) {
  Request request;
  request.kind = kind;
  request.host = 7;
  request.vm = 11;
  request.tenant = 3;
  request.t0 = 1.5;
  request.t1 = 0x1.fffffffffffffp+9;  // bit-pattern survival matters.
  return request;
}

// --- binary codec -----------------------------------------------------------

TEST(ProtocolCodec, BinaryRequestsRoundTripEveryKind) {
  for (const QueryKind kind :
       {QueryKind::kVmPower, QueryKind::kTenantPower, QueryKind::kFleetPower,
        QueryKind::kVmEnergy, QueryKind::kTenantEnergy, QueryKind::kTenantCost,
        QueryKind::kStats}) {
    const Request request = make_request(kind);
    const auto decoded = decode_request(encode_request(request));
    ASSERT_TRUE(decoded.has_value()) << to_string(kind);
    EXPECT_EQ(decoded->kind, request.kind);
    EXPECT_EQ(decoded->canonical(), request.canonical());
  }
}

TEST(ProtocolCodec, BinaryDecodeRejectsMalformedBodies) {
  EXPECT_FALSE(decode_request("").has_value());
  EXPECT_FALSE(decode_request(std::string(1, '\x63')).has_value());  // opcode.
  // Truncated operands: vm-power needs two u32s.
  std::string body = encode_request(make_request(QueryKind::kVmPower));
  EXPECT_FALSE(decode_request(body.substr(0, body.size() - 1)).has_value());
  // Trailing bytes after a complete operand layout are an error, not slack.
  EXPECT_FALSE(decode_request(body + '\0').has_value());
  // Window bounds must be finite.
  Request nan_window = make_request(QueryKind::kVmEnergy);
  nan_window.t0 = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(decode_request(encode_request(nan_window)).has_value());
}

TEST(ProtocolCodec, BinaryResponsesRoundTrip) {
  const Response ok = Response::success(42, {1.0, -2.5, 1e-300});
  const auto ok_decoded = decode_response(encode_response(ok));
  ASSERT_TRUE(ok_decoded.has_value());
  EXPECT_TRUE(ok_decoded->ok);
  EXPECT_EQ(ok_decoded->epoch, 42u);
  EXPECT_EQ(ok_decoded->values, ok.values);

  const Response error =
      Response::error(ErrorCode::kOutOfRetention, "window too old");
  const auto error_decoded = decode_response(encode_response(error));
  ASSERT_TRUE(error_decoded.has_value());
  EXPECT_FALSE(error_decoded->ok);
  EXPECT_EQ(error_decoded->code, ErrorCode::kOutOfRetention);
  EXPECT_EQ(error_decoded->message, "window too old");
  EXPECT_EQ(error_decoded->detail, 0u);
  EXPECT_FALSE(decode_response("").has_value());
}

TEST(ProtocolCodec, ErrorDetailRoundTripsOnBothEncodings) {
  // The window errors carry the oldest still-answerable epoch so a client
  // can clamp its window instead of guessing.
  const Response error = Response::error(
      ErrorCode::kOutOfHistory, "window start predates the durable ledger",
      77);
  const auto decoded = decode_response(encode_response(error));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->code, ErrorCode::kOutOfHistory);
  EXPECT_EQ(decoded->detail, 77u);
  EXPECT_EQ(decoded->message, error.message);

  // Text spells the detail as an `oldest=` token — but only when set, so
  // detail-free errors keep their exact pre-ledger shape.
  EXPECT_EQ(format_response_text(error),
            "ERR 10 oldest=77 window start predates the durable ledger");
  EXPECT_EQ(format_response_text(
                Response::error(ErrorCode::kOutOfRetention, "gone", 12)),
            "ERR 5 oldest=12 gone");
  EXPECT_EQ(format_response_text(
                Response::error(ErrorCode::kOutOfRetention, "gone")),
            "ERR 5 gone");
}

TEST(ProtocolCodec, FramePrefixIsBigEndianLength) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), kFramePrefixBytes + 3);
  EXPECT_EQ(frame[0], 0);
  EXPECT_EQ(frame[1], 0);
  EXPECT_EQ(frame[2], 0);
  EXPECT_EQ(frame[3], 3);
  EXPECT_EQ(frame.substr(4), "abc");
}

// --- text codec -------------------------------------------------------------

TEST(ProtocolCodec, TextRequestsRoundTripAndMatchCanonicalForm) {
  for (const QueryKind kind :
       {QueryKind::kVmPower, QueryKind::kTenantPower, QueryKind::kFleetPower,
        QueryKind::kVmEnergy, QueryKind::kTenantEnergy, QueryKind::kTenantCost,
        QueryKind::kStats}) {
    const Request request = make_request(kind);
    const std::string line = format_request_text(request);
    const auto parsed = parse_request_text(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->canonical(), request.canonical());
  }
  // Whitespace is flexible; verbs are not.
  EXPECT_TRUE(parse_request_text("  fleet-power  ").has_value());
  EXPECT_FALSE(parse_request_text("fleet-pwr").has_value());
  EXPECT_FALSE(parse_request_text("").has_value());
  EXPECT_FALSE(parse_request_text("vm-power 0").has_value());     // arity.
  EXPECT_FALSE(parse_request_text("vm-power 0 1 2").has_value());
  EXPECT_FALSE(parse_request_text("vm-power x y").has_value());
  EXPECT_FALSE(parse_request_text("vm-energy 0 1 0 inf").has_value());
}

TEST(ProtocolCodec, TextResponsesRoundTripDoublesExactly) {
  const double awkward = 0.1 + 0.2;  // not representable as a short decimal.
  const std::string line =
      format_response_text(Response::success(9, {awkward}));
  EXPECT_EQ(line.rfind("OK 9 ", 0), 0u);
  EXPECT_EQ(std::stod(line.substr(5)), awkward);  // %.17g round-trips.
  EXPECT_EQ(format_response_text(
                Response::error(ErrorCode::kThrottled, "slow down")),
            "ERR 8 slow down");
}

TEST(ProtocolCodec, SingleCopyFramingMatchesTheLegacyEncodersByte) {
  // begin_frame / finish_frame + the *_into encoders write straight into
  // one buffer; the frames must equal the copying encoders bit for bit in
  // all three header shapes (plain, id, traced).
  Request request;
  request.kind = QueryKind::kTenantCost;
  request.tenant = 3;
  request.t0 = 1.5;
  request.t1 = 17.25;
  const std::string body = encode_request(request);
  {
    std::string single;
    single.reserve(64);
    const std::size_t start = begin_frame(single, false, 0);
    encode_request_into(request, single);
    finish_frame(single, start);
    EXPECT_EQ(single, encode_frame(body));
  }
  {
    std::string single;
    const std::size_t start = begin_frame(single, true, 0xdeadbeefcafef00dull);
    encode_request_into(request, single);
    finish_frame(single, start);
    EXPECT_EQ(single, encode_frame_with_id(body, 0xdeadbeefcafef00dull));
  }
  {
    TraceContextWire trace;
    trace.trace_id = 0x1111222233334444ull;
    trace.parent_span = 0x5555666677778888ull;
    trace.budget_us = 250000;
    std::string single;
    const std::size_t start = begin_frame(single, true, 42, &trace);
    encode_request_into(request, single);
    finish_frame(single, start);
    EXPECT_EQ(single, encode_frame_with_trace(body, 42, trace));
  }
  // Appending into a non-empty buffer (the corked path) leaves the prefix
  // untouched and frames only the new bytes.
  {
    std::string wire = "already-sent";
    const std::size_t start = begin_frame(wire, true, 7);
    encode_request_into(request, wire);
    finish_frame(wire, start);
    EXPECT_EQ(wire.substr(0, 12), "already-sent");
    EXPECT_EQ(wire.substr(12), encode_frame_with_id(body, 7));
  }
  // Response and text formatting share the same into-variants.
  const Response ok = Response::success(24, {1.0, 2.5});
  const Response err = Response::error(ErrorCode::kThrottled, "slow down");
  for (const Response& response : {ok, err}) {
    std::string into;
    encode_response_into(response, into);
    EXPECT_EQ(into, encode_response(response));
    std::string text = "#9 ";
    format_response_text_into(response, text);
    EXPECT_EQ(text, "#9 " + format_response_text(response));
  }
}

// --- shared dispatch path ---------------------------------------------------

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() {
    for (int t = 1; t <= 24; ++t) store_.publish(synthetic_at(t));
  }

  SnapshotStore store_{64};
  fleet::Metrics metrics_;
  QueryEngine engine_{store_, {.cache_capacity = 1024, .metrics = &metrics_}};
};

TEST_F(TransportTest, InProcessRejectsBadFramesWithoutThrowing) {
  InProcessTransport transport(engine_, &metrics_);

  const auto error_of = [](const std::string& frame) {
    const auto response =
        decode_response(std::string_view(frame).substr(kFramePrefixBytes));
    EXPECT_TRUE(response.has_value());
    EXPECT_FALSE(response->ok);
    return response->code;
  };

  EXPECT_EQ(error_of(transport.roundtrip_binary("ab")), ErrorCode::kMalformed);
  // Declared length exceeding the limit is rejected before any body read.
  std::string oversized = {'\x7f', '\x00', '\x00', '\x00'};
  EXPECT_EQ(error_of(transport.roundtrip_binary(oversized)),
            ErrorCode::kFrameTooLarge);
  // Prefix promising more bytes than supplied.
  EXPECT_EQ(error_of(transport.roundtrip_binary(encode_frame("xy") + "junk")),
            ErrorCode::kMalformed);
  // Garbage body of the right shape decodes to no known opcode.
  EXPECT_EQ(error_of(transport.roundtrip_binary(encode_frame("\xee\xff"))),
            ErrorCode::kMalformed);
  EXPECT_EQ(transport.roundtrip_text("gibberish"),
            "ERR 1 unparseable request");

  const std::string dump = metrics_.to_prometheus();
  EXPECT_NE(dump.find("vmpower_serve_protocol_errors_total"),
            std::string::npos);
}

TEST_F(TransportTest, DispatcherExportsLabeledLatencyHistograms) {
  InProcessTransport transport(engine_, &metrics_);
  Request request;
  request.kind = QueryKind::kFleetPower;
  ASSERT_TRUE(transport.query(request).ok);
  (void)transport.roundtrip_text("fleet-power");

  const std::string dump = metrics_.to_prometheus();
  EXPECT_NE(dump.find("vmpower_serve_requests_total{proto=\"binary\","
                      "kind=\"fleet-power\"} 1"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_requests_total{proto=\"text\","
                      "kind=\"fleet-power\"} 1"),
            std::string::npos);
  // Labeled histograms merge le into the existing label set (satellite:
  // the old exporter restriction is gone).
  EXPECT_NE(dump.find(
                "vmpower_serve_request_latency_seconds_bucket{proto=\"binary\","
                "le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(
      dump.find("vmpower_serve_request_latency_seconds_count{proto=\"text\"} 1"),
      std::string::npos);
}

// --- TCP end to end ---------------------------------------------------------

class ServerTest : public TransportTest {
 protected:
  ServerOptions quick_options() const {
    ServerOptions options;
    options.workers = 2;
    options.queue_capacity = 16;
    return options;
  }
};

TEST_F(ServerTest, AnswersPointWindowAndCostQueriesOverTcp) {
  Server server(engine_, metrics_, quick_options());
  Client client(server.port());

  Request point;
  point.kind = QueryKind::kVmPower;
  point.host = 1;
  point.vm = 4;
  Response response = client.query(point);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.epoch, 24u);
  EXPECT_DOUBLE_EQ(response.values.at(0), 48.0);

  Request window;
  window.kind = QueryKind::kTenantEnergy;
  window.tenant = 2;
  window.t0 = 6.0;
  window.t1 = 18.0;
  response = client.query(window);
  ASSERT_TRUE(response.ok);
  EXPECT_DOUBLE_EQ(response.values.at(0), 2400.0);

  window.kind = QueryKind::kTenantCost;
  response = client.query(window);
  ASSERT_TRUE(response.ok);
  ASSERT_EQ(response.values.size(), 2u);
  EXPECT_DOUBLE_EQ(response.values.at(1), 2400.0);

  // A second, text-mode connection against the same server.
  Client text_client(server.port());
  EXPECT_EQ(text_client.query_text("fleet-power"), "OK 24 72");
  EXPECT_EQ(text_client.query_text("tenant-power 9"), "ERR 4 unknown tenant 9");
  server.stop();
}

TEST_F(ServerTest, TcpAndInProcessResponsesAreByteIdentical) {
  Server server(engine_, metrics_, quick_options());
  // A separate uncached engine would re-evaluate; byte identity must hold
  // through the cache too, so use the server's own engine in process.
  InProcessTransport in_process(engine_, &metrics_);
  Client client(server.port());
  Client text_client(server.port());

  std::vector<std::string> lines = {
      "stats",           "fleet-power",          "vm-power 0 1",
      "tenant-power 2",  "vm-energy 0 1 2 10",   "tenant-energy 1 0 24",
      "tenant-cost 2 6 18", "tenant-power 777",  "vm-power 9 9",
  };
  for (const std::string& line : lines) {
    SCOPED_TRACE(line);
    // Text path: the TCP response line equals the in-process line.
    EXPECT_EQ(text_client.query_text(line), in_process.roundtrip_text(line));
    // Binary path: encoded response bodies are byte-identical.
    const auto request = parse_request_text(line);
    ASSERT_TRUE(request.has_value());
    client.send_raw(encode_frame(encode_request(*request)));
    const std::string tcp_frame = client.recv_frame();
    EXPECT_EQ(tcp_frame,
              in_process.roundtrip_binary(
                  encode_frame(encode_request(*request))));
  }
  server.stop();
}

TEST_F(ServerTest, GarbageAndTruncatedFramesNeverCrashTheServer) {
  Server server(engine_, metrics_, quick_options());

  {  // Oversized declared length (prefix first byte stays < 0x20 so the
    // sniffer sees binary): explicit error, connection dropped.
    Client client(server.port());
    client.send_raw(std::string{'\x00', '\x11', '\x00', '\x00'});
    const auto response = decode_response(
        std::string_view(client.recv_frame()).substr(kFramePrefixBytes));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->code, ErrorCode::kFrameTooLarge);
  }
  {  // Garbage binary body: protocol error response, connection lives on.
    Client client(server.port());
    client.send_raw(encode_frame(std::string("\x19\xff\xff", 3)));
    const auto response = decode_response(
        std::string_view(client.recv_frame()).substr(kFramePrefixBytes));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->code, ErrorCode::kMalformed);
    // Same connection still answers a well-formed request.
    Request request;
    request.kind = QueryKind::kFleetPower;
    EXPECT_TRUE(client.query(request).ok);
  }
  {  // Mid-request disconnect: frame promises 12 bytes, client sends 2 and
    // hangs up. The server must just drop the connection.
    Client client(server.port());
    client.send_raw(encode_frame("full body").substr(0, 6));
    client.shutdown_write();
  }
  {  // Text line over the limit.
    Client client(server.port());
    client.send_raw(std::string(2 * kMaxLineBytes, 'a'));
    EXPECT_EQ(client.recv_line(), "ERR 1 line exceeds 1 KiB limit");
  }
  {  // Abrupt close with no bytes at all.
    Client client(server.port());
  }

  // After all of the above the server still serves.
  Client client(server.port());
  EXPECT_EQ(client.query_text("fleet-power"), "OK 24 72");
  server.stop();
}

TEST_F(ServerTest, TokenBucketShedsAndCountsThrottledRequests) {
  ServerOptions options = quick_options();
  options.tokens_per_s = 0.0;  // no refill: exactly `burst` admissions.
  options.token_burst = 3.0;
  Server server(engine_, metrics_, options);
  Client client(server.port());

  int ok = 0, throttled = 0;
  for (int i = 0; i < 10; ++i) {
    const std::string line = client.query_text("fleet-power");
    if (line.rfind("OK", 0) == 0)
      ++ok;
    else if (line == "ERR 8 client exceeded its request rate")
      ++throttled;
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(throttled, 7);
  // Sheds are per-connection: a fresh client gets a fresh bucket.
  Client fresh(server.port());
  EXPECT_EQ(fresh.query_text("stats").rfind("OK", 0), 0u);
  EXPECT_NE(metrics_.to_prometheus().find(
                "vmpower_serve_shed_total{reason=\"throttle\"} 7"),
            std::string::npos);
  server.stop();
}

TEST_F(ServerTest, FullQueueShedsWithOverloadedError) {
  ServerOptions options = quick_options();
  options.workers = 1;
  options.queue_capacity = 1;
  options.worker_delay = std::chrono::milliseconds(40);
  Server server(engine_, metrics_, options);

  // Burst unframed pipelined requests on one connection: worker is stalled,
  // so at most (1 in flight + 1 queued) are admitted per round.
  Client client(server.port());
  constexpr int kBurst = 8;
  const std::string frame =
      encode_frame(encode_request([] {
        Request request;
        request.kind = QueryKind::kStats;
        return request;
      }()));
  std::string pipelined;
  for (int i = 0; i < kBurst; ++i) pipelined += frame;
  client.send_raw(pipelined);

  int ok = 0, overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    const auto response = decode_response(
        std::string_view(client.recv_frame()).substr(kFramePrefixBytes));
    ASSERT_TRUE(response.has_value());
    if (response->ok)
      ++ok;
    else if (response->code == ErrorCode::kOverloaded)
      ++overloaded;
  }
  EXPECT_GT(overloaded, 0);
  EXPECT_GT(ok, 0);
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_NE(metrics_.to_prometheus().find(
                "vmpower_serve_shed_total{reason=\"queue\"}"),
            std::string::npos);
  server.stop();
}

// --- request ids ------------------------------------------------------------

TEST(ProtocolCodec, FrameWithIdSetsFlagAndCarriesBigEndianId) {
  const std::string frame = encode_frame_with_id("body", 0x0102030405060708ull);
  ASSERT_EQ(frame.size(), kFramePrefixBytes + kFrameIdBytes + 4);
  // Prefix: length 4 with bit 31 set.
  EXPECT_EQ(static_cast<std::uint8_t>(frame[0]), 0x80);
  EXPECT_EQ(static_cast<std::uint8_t>(frame[3]), 0x04);
  // Big-endian id between prefix and body.
  for (std::size_t i = 0; i < kFrameIdBytes; ++i)
    EXPECT_EQ(static_cast<std::uint8_t>(frame[kFramePrefixBytes + i]), i + 1);
  EXPECT_EQ(frame.substr(kFramePrefixBytes + kFrameIdBytes), "body");
  // Unflagged framing is byte-identical to the pre-id protocol.
  EXPECT_EQ(encode_frame("body")[0], '\0');
}

TEST(ProtocolCodec, StripTextRequestIdParsesAndEchoPreservesLine) {
  std::string_view line = "#42 stats";
  std::uint64_t id = 0;
  ASSERT_TRUE(strip_text_request_id(line, id));
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(line, "stats");

  line = "#7\tfleet-power";
  ASSERT_TRUE(strip_text_request_id(line, id));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(line, "fleet-power");

  line = "#9";  // id alone: valid, empty remainder.
  ASSERT_TRUE(strip_text_request_id(line, id));
  EXPECT_EQ(id, 9u);
  EXPECT_TRUE(line.empty());

  // Rejections leave the line untouched.
  for (const std::string_view bad :
       {"stats", "#", "# 42 stats", "#x1 stats", "#42x stats",
        "#99999999999999999999 stats"}) {
    std::string_view untouched = bad;
    EXPECT_FALSE(strip_text_request_id(untouched, id)) << bad;
    EXPECT_EQ(untouched, bad);
  }
}

TEST_F(TransportTest, BinaryIdIsEchoedInTheResponseFrame) {
  InProcessTransport transport(engine_, &metrics_);
  Request request;
  request.kind = QueryKind::kFleetPower;
  const std::string frame = transport.roundtrip_binary(
      encode_frame_with_id(encode_request(request), 0xdeadbeefull));

  std::uint32_t prefix = 0;
  for (std::size_t i = 0; i < kFramePrefixBytes; ++i)
    prefix = (prefix << 8) | static_cast<std::uint8_t>(frame[i]);
  ASSERT_TRUE(prefix & kFrameIdFlag);
  std::uint64_t echoed = 0;
  for (std::size_t i = 0; i < kFrameIdBytes; ++i)
    echoed = (echoed << 8) |
             static_cast<std::uint8_t>(frame[kFramePrefixBytes + i]);
  EXPECT_EQ(echoed, 0xdeadbeefull);
  const auto response = decode_response(std::string_view(frame).substr(
      kFramePrefixBytes + kFrameIdBytes));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok);
}

TEST_F(TransportTest, TextIdIsEchoedAsFirstToken) {
  InProcessTransport transport(engine_, &metrics_);
  EXPECT_EQ(transport.roundtrip_text("#31 fleet-power"), "#31 OK 24 72");
  // Errors echo too, and an id-less line stays id-less.
  EXPECT_EQ(transport.roundtrip_text("#32 gibberish"),
            "#32 ERR 1 unparseable request");
  EXPECT_EQ(transport.roundtrip_text("fleet-power"), "OK 24 72");
}

TEST_F(TransportTest, RequestIdDoesNotSplitTheResultCache) {
  InProcessTransport transport(engine_, &metrics_);
  (void)transport.roundtrip_text("#1 fleet-power");
  (void)transport.roundtrip_text("#2 fleet-power");
  (void)transport.roundtrip_text("fleet-power");
  // One miss filled the cache; the differently-id'd repeats all hit.
  EXPECT_EQ(engine_.cache_misses(), 1u);
  EXPECT_EQ(engine_.cache_hits(), 2u);
}

TEST_F(TransportTest, MetricsAndTraceCommandsReturnEofTerminatedPayloads) {
  InProcessTransport transport(engine_, &metrics_);
  metrics_.counter("vmpower_test_counter_total", "test").inc();
  const std::string metrics_payload = transport.roundtrip_text("METRICS");
  EXPECT_NE(metrics_payload.find("# TYPE vmpower_test_counter_total counter"),
            std::string::npos);
  EXPECT_EQ(metrics_payload.substr(metrics_payload.size() -
                                   std::string(kScrapeEof).size()),
            kScrapeEof);

  const std::string trace_payload = transport.roundtrip_text("TRACE");
  EXPECT_NE(trace_payload.find(kScrapeEof), std::string::npos);
  EXPECT_NE(metrics_.to_prometheus().find(
                "vmpower_serve_scrapes_total{command=\"metrics\"} 1"),
            std::string::npos);
}

TEST_F(ServerTest, IdFlaggedBinaryFramesRoundTripOverTcp) {
  Server server(engine_, metrics_, quick_options());
  Client client(server.port());
  Request request;
  request.kind = QueryKind::kFleetPower;
  // The flagged prefix's first byte is 0x80: the sniff must still route the
  // connection to the binary handler, and the echo must match.
  const Response response = client.query_with_id(request, 77);
  ASSERT_TRUE(response.ok);
  EXPECT_DOUBLE_EQ(response.values.at(0), 72.0);
  // Mixed traffic on one connection: unflagged frames still work after.
  EXPECT_TRUE(client.query(request).ok);
  server.stop();
}

TEST_F(ServerTest, TextIdsEchoOnRepliesAndShedsOverTcp) {
  ServerOptions options = quick_options();
  options.tokens_per_s = 0.0;  // burst only: the bucket never refills.
  options.token_burst = 2.0;
  Server server(engine_, metrics_, options);
  Client client(server.port());
  EXPECT_EQ(client.query_text("#5 fleet-power"), "#5 OK 24 72");
  (void)client.query_text("#6 fleet-power");  // drains the bucket.
  // The shed path never reaches the dispatcher, yet still echoes the id.
  EXPECT_EQ(client.query_text("#7 fleet-power"),
            "#7 ERR 8 client exceeded its request rate");
  server.stop();
}

TEST_F(ServerTest, MetricsScrapeOverTcpIsExpositionShaped) {
  Server server(engine_, metrics_, quick_options());
  Client client(server.port());
  const std::string payload = client.scrape("METRICS");
  EXPECT_NE(payload.find("# HELP "), std::string::npos);
  EXPECT_NE(payload.find("# TYPE "), std::string::npos);
  // The terminator was consumed, not included.
  EXPECT_EQ(payload.find(kScrapeEof), std::string::npos);
  // The scrape itself was counted, so a second scrape sees the counter.
  const std::string again = client.scrape("METRICS");
  EXPECT_NE(again.find("vmpower_serve_scrapes_total{command=\"metrics\"}"),
            std::string::npos);
  server.stop();
}

// --- out-of-order completion ------------------------------------------------

TEST_F(ServerTest, OutOfOrderBinaryCompletionMapsResponsesToIds) {
  ServerOptions options = quick_options();
  options.cost_query_delay = std::chrono::milliseconds(80);
  Server server(engine_, metrics_, options);
  Client client(server.port());

  Request slow;  // stalled by the hook: arrives first, completes last.
  slow.kind = QueryKind::kTenantCost;
  slow.tenant = 1;
  slow.t0 = 6.0;
  slow.t1 = 18.0;
  Request cheap;
  cheap.kind = QueryKind::kFleetPower;
  client.send_query_with_id(slow, 1);
  client.send_query_with_id(cheap, 2);

  // The cheap query overtakes the stalled one; each echoed id still names
  // the request it answers.
  const auto first = client.recv_response_with_id();
  const auto second = client.recv_response_with_id();
  EXPECT_EQ(first.first, 2u);
  ASSERT_TRUE(first.second.ok);
  EXPECT_DOUBLE_EQ(first.second.values.at(0), 72.0);
  EXPECT_EQ(second.first, 1u);
  ASSERT_TRUE(second.second.ok);
  EXPECT_DOUBLE_EQ(second.second.values.at(1), 1200.0);

  const std::string dump = metrics_.to_prometheus();
  EXPECT_NE(dump.find("vmpower_serve_responses_reordered_total 1"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_admitted_total 2"), std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_answered_total 2"), std::string::npos);
  server.stop();
}

TEST_F(ServerTest, OutOfOrderTextCompletionMapsResponsesToIds) {
  ServerOptions options = quick_options();
  options.cost_query_delay = std::chrono::milliseconds(80);
  Server server(engine_, metrics_, options);
  Client client(server.port());

  client.send_raw("#1 tenant-cost 1 6 18\n#2 fleet-power\n");
  EXPECT_EQ(client.recv_line(), "#2 OK 24 72");
  const std::string slow_line = client.recv_line();
  EXPECT_EQ(slow_line.rfind("#1 OK 18 ", 0), 0u) << slow_line;
  server.stop();
}

TEST_F(ServerTest, IdLessPipelinedClientsKeepArrivalOrder) {
  ServerOptions options = quick_options();
  options.cost_query_delay = std::chrono::milliseconds(80);
  Server server(engine_, metrics_, options);

  {  // Binary without ids: the slow head must not be overtaken.
    Client client(server.port());
    Request slow;
    slow.kind = QueryKind::kTenantCost;
    slow.tenant = 1;
    slow.t0 = 6.0;
    slow.t1 = 18.0;
    Request cheap;
    cheap.kind = QueryKind::kFleetPower;
    client.send_query(slow);
    client.send_query(cheap);
    const Response first = client.recv_response();
    const Response second = client.recv_response();
    ASSERT_TRUE(first.ok);
    ASSERT_EQ(first.values.size(), 2u);  // the cost response: came first.
    EXPECT_DOUBLE_EQ(first.values.at(1), 1200.0);
    ASSERT_TRUE(second.ok);
    EXPECT_DOUBLE_EQ(second.values.at(0), 72.0);
  }
  {  // Text without ids.
    Client client(server.port());
    client.send_raw("tenant-cost 1 6 18\nfleet-power\n");
    EXPECT_EQ(client.recv_line().rfind("OK 18 ", 0), 0u);
    EXPECT_EQ(client.recv_line(), "OK 24 72");
  }
  server.stop();
}

TEST_F(ServerTest, OrderedModeForcesArrivalOrderForIdRequests) {
  ServerOptions options = quick_options();
  options.out_of_order = false;
  options.cost_query_delay = std::chrono::milliseconds(80);
  Server server(engine_, metrics_, options);
  Client client(server.port());

  Request slow;
  slow.kind = QueryKind::kTenantCost;
  slow.tenant = 1;
  slow.t0 = 6.0;
  slow.t1 = 18.0;
  Request cheap;
  cheap.kind = QueryKind::kFleetPower;
  client.send_query_with_id(slow, 1);
  client.send_query_with_id(cheap, 2);
  const auto first = client.recv_response_with_id();
  const auto second = client.recv_response_with_id();
  EXPECT_EQ(first.first, 1u);
  EXPECT_EQ(second.first, 2u);
  EXPECT_NE(metrics_.to_prometheus().find(
                "vmpower_serve_responses_reordered_total 0"),
            std::string::npos);
  server.stop();
}

TEST_F(ServerTest, ReleasedReorderRunIsCorkedIntoOneFlush) {
  // Ordered mode with a stalled head: the cheap tail parks in the reorder
  // buffer, and when the head completes the whole run must leave in one
  // corked send — counted once — with every response byte still correct
  // and in arrival order.
  ServerOptions options = quick_options();
  options.out_of_order = false;
  options.cost_query_delay = std::chrono::milliseconds(100);
  Server server(engine_, metrics_, options);
  Client client(server.port());

  Request slow;
  slow.kind = QueryKind::kTenantCost;
  slow.tenant = 1;
  slow.t0 = 6.0;
  slow.t1 = 18.0;
  Request cheap;
  cheap.kind = QueryKind::kFleetPower;
  client.send_query_with_id(slow, 1);
  for (std::uint64_t id = 2; id <= 4; ++id)
    client.send_query_with_id(cheap, id);

  for (std::uint64_t id = 1; id <= 4; ++id) {
    const auto [echoed, response] = client.recv_response_with_id();
    EXPECT_EQ(echoed, id);
    ASSERT_TRUE(response.ok) << response.message;
    if (id > 1) EXPECT_DOUBLE_EQ(response.values.at(0), 72.0);
  }

  const std::string dump = metrics_.to_prometheus();
  EXPECT_NE(dump.find("vmpower_serve_corked_flushes_total 1"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_answered_total 4"), std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_responses_reordered_total 0"),
            std::string::npos);
  server.stop();
}

TEST_F(ServerTest, ResponsesByteIdenticalBetweenOrderedAndOutOfOrder) {
  // Same engine behind both servers: for every request id the wire bytes
  // must match regardless of completion order — including error responses.
  ServerOptions ordered_options = quick_options();
  ordered_options.out_of_order = false;
  Server ordered(engine_, metrics_, ordered_options);
  ServerOptions ooo_options = quick_options();
  ooo_options.cost_query_delay = std::chrono::milliseconds(30);
  Server reordering(engine_, metrics_, ooo_options);

  const std::vector<std::string> lines = {
      "tenant-cost 1 6 18", "fleet-power",    "vm-power 0 1",
      "tenant-power 777",   "vm-energy 0 1 2 10",
  };
  std::string pipelined;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto request = parse_request_text(lines[i]);
    ASSERT_TRUE(request.has_value()) << lines[i];
    pipelined += encode_frame_with_id(encode_request(*request), 100 + i);
  }

  const auto collect = [&](Server& server) {
    std::map<std::uint64_t, std::string> frames;
    Client client(server.port());
    client.send_raw(pipelined);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string frame = client.recv_frame();
      std::uint64_t id = 0;
      for (std::size_t b = 0; b < kFrameIdBytes; ++b)
        id = (id << 8) |
             static_cast<std::uint8_t>(frame[kFramePrefixBytes + b]);
      frames[id] = frame;
    }
    return frames;
  };

  const auto ordered_frames = collect(ordered);
  const auto reordered_frames = collect(reordering);
  ASSERT_EQ(ordered_frames.size(), lines.size());
  for (const auto& [id, frame] : ordered_frames) {
    const auto it = reordered_frames.find(id);
    ASSERT_NE(it, reordered_frames.end()) << "id " << id << " unanswered";
    EXPECT_EQ(it->second, frame) << "id " << id << " bytes diverged";
  }
  ordered.stop();
  reordering.stop();
}

TEST_F(ServerTest, ExactlyOnceAccountingBalancesAfterDrain) {
  ServerOptions options = quick_options();
  options.tokens_per_s = 0.0;  // sheds count as answered too.
  options.token_burst = 2.0;
  Server server(engine_, metrics_, options);
  Client client(server.port());
  for (int i = 0; i < 5; ++i) (void)client.query_text("fleet-power");

  // query_text awaits each response, but the worker decrements the
  // outstanding gauge only after the send (decrementing first would let the
  // invariant monitor observe outstanding==0 while answered<admitted), so
  // give the last decrement a moment to land.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.outstanding() != 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(server.admitted(), 5u);
  EXPECT_EQ(server.answered(), 5u);
  EXPECT_EQ(server.outstanding(), 0u);

  obs::MetricsRegistry registry;
  obs::InvariantMonitor monitor(registry);
  monitor.observe_serve_accounting(24, server.admitted(), server.answered(),
                                   server.outstanding());
  EXPECT_EQ(monitor.breaches(), 0u);
  server.stop();
}

TEST_F(ServerTest, ServerOptionsValidation) {
  ServerOptions bad;
  bad.workers = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ServerOptions{};
  bad.queue_capacity = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ServerOptions{};
  bad.token_burst = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// --- trace context ----------------------------------------------------------

TEST(ProtocolCodec, TraceBlockRoundTripsAndRejectsBadVersionOrSize) {
  TraceContextWire ctx;
  ctx.trace_id = 0x1122334455667788ull;
  ctx.parent_span = 0xa1a2a3a4a5a6a7a8ull;
  ctx.budget_us = 250000;
  const std::string block = encode_trace_block(ctx);
  ASSERT_EQ(block.size(), kFrameTraceBytes);
  EXPECT_EQ(static_cast<std::uint8_t>(block[0]), kFrameTraceVersion);

  TraceContextWire decoded;
  ASSERT_TRUE(decode_trace_block(block, decoded));
  EXPECT_EQ(decoded.trace_id, ctx.trace_id);
  EXPECT_EQ(decoded.parent_span, ctx.parent_span);
  EXPECT_EQ(decoded.budget_us, ctx.budget_us);

  std::string wrong_version = block;
  wrong_version[0] = 9;
  EXPECT_FALSE(decode_trace_block(wrong_version, decoded));
  EXPECT_FALSE(decode_trace_block(block.substr(0, kFrameTraceBytes - 1),
                                  decoded));
  EXPECT_FALSE(decode_trace_block(block + "x", decoded));
}

TEST(ProtocolCodec, FrameWithTraceSetsBothFlagsAndSniffsAsBinary) {
  TraceContextWire ctx;
  ctx.trace_id = 7;
  ctx.parent_span = 19;
  ctx.budget_us = 1000;
  const std::string frame = encode_frame_with_trace("body", 42, ctx);
  ASSERT_EQ(frame.size(),
            kFramePrefixBytes + kFrameIdBytes + kFrameTraceBytes + 4);
  // Both flag bits set: the first byte is >= 0xC0, which the server's
  // text-vs-binary sniff must classify as binary (a lone trace flag would
  // be 0x40 = '@' and read as text — the reason the flag pairing exists).
  EXPECT_EQ(static_cast<std::uint8_t>(frame[0]), 0xC0);
  std::uint32_t prefix = 0;
  for (std::size_t i = 0; i < kFramePrefixBytes; ++i)
    prefix = (prefix << 8) | static_cast<std::uint8_t>(frame[i]);
  EXPECT_EQ(prefix & kFrameLenMask, 4u);
  // Id, then the trace block, then the body.
  EXPECT_EQ(static_cast<std::uint8_t>(frame[kFramePrefixBytes + kFrameIdBytes -
                                            1]),
            42u);
  TraceContextWire decoded;
  ASSERT_TRUE(decode_trace_block(
      std::string_view(frame).substr(kFramePrefixBytes + kFrameIdBytes,
                                     kFrameTraceBytes),
      decoded));
  EXPECT_EQ(decoded.trace_id, 7u);
  EXPECT_EQ(frame.substr(kFramePrefixBytes + kFrameIdBytes + kFrameTraceBytes),
            "body");
}

TEST(ProtocolCodec, StripTextEnvelopeUnderstandsAllThreeForms) {
  std::uint64_t id = 0;
  TraceContextWire trace;

  std::string_view line = "#42@7:19:250000 stats";
  EXPECT_EQ(strip_text_envelope(line, id, trace), TextEnvelope::kTraced);
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(trace.trace_id, 7u);
  EXPECT_EQ(trace.parent_span, 19u);
  EXPECT_EQ(trace.budget_us, 250000u);
  EXPECT_EQ(line, "stats");

  line = "#42 stats";  // plain id: unchanged semantics.
  EXPECT_EQ(strip_text_envelope(line, id, trace), TextEnvelope::kId);
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(line, "stats");

  line = "stats";  // pre-id client, untouched.
  EXPECT_EQ(strip_text_envelope(line, id, trace), TextEnvelope::kNone);
  EXPECT_EQ(line, "stats");

  // A bad context suffix is kMalformed — never read as an untraced id — and
  // the parsed id is still reported for the error echo.
  for (const std::string_view bad :
       {"#42@ stats", "#42@7 stats", "#42@7:19 stats", "#42@x:19:1 stats",
        "#42@7:x:1 stats", "#42@7:19:x stats", "#42@7:19:1x stats",
        "#42@7:19:99999999999999999999 stats"}) {
    std::string_view untouched = bad;
    id = 0;
    EXPECT_EQ(strip_text_envelope(untouched, id, trace),
              TextEnvelope::kMalformed)
        << bad;
    EXPECT_EQ(untouched, bad);
    EXPECT_EQ(id, 42u) << bad;
  }
}

TEST_F(TransportTest, TracedBinaryFrameExecutesAndEchoesIdOnly) {
  InProcessTransport transport(engine_, &metrics_);
  Request request;
  request.kind = QueryKind::kFleetPower;
  TraceContextWire ctx;
  ctx.trace_id = 77;
  ctx.parent_span = 5;
  ctx.budget_us = 100000;
  const std::string frame = transport.roundtrip_binary(
      encode_frame_with_trace(encode_request(request), 0xabcdull, ctx));

  std::uint32_t prefix = 0;
  for (std::size_t i = 0; i < kFramePrefixBytes; ++i)
    prefix = (prefix << 8) | static_cast<std::uint8_t>(frame[i]);
  ASSERT_TRUE(prefix & kFrameIdFlag);
  // Responses never carry the trace block: id echo only, byte-identical to
  // an untraced id exchange.
  EXPECT_FALSE(prefix & kFrameTraceFlag);
  std::uint64_t echoed = 0;
  for (std::size_t i = 0; i < kFrameIdBytes; ++i)
    echoed = (echoed << 8) |
             static_cast<std::uint8_t>(frame[kFramePrefixBytes + i]);
  EXPECT_EQ(echoed, 0xabcdull);
  const auto response = decode_response(
      std::string_view(frame).substr(kFramePrefixBytes + kFrameIdBytes));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(frame, transport.roundtrip_binary(encode_frame_with_id(
                       encode_request(request), 0xabcdull)));
}

TEST_F(TransportTest, LoneTraceFlagAndBadVersionAreMalformed) {
  InProcessTransport transport(engine_, &metrics_);
  Request request;
  request.kind = QueryKind::kFleetPower;
  TraceContextWire ctx;
  ctx.trace_id = 1;

  // Trace flag without the id flag: invalid by construction.
  std::string lone = encode_frame_with_trace(encode_request(request), 9, ctx);
  lone[0] = static_cast<char>(static_cast<std::uint8_t>(lone[0]) & ~0x80u);
  lone.erase(kFramePrefixBytes, kFrameIdBytes);  // drop the id the flag lost.
  const auto lone_response = decode_response(
      std::string_view(transport.roundtrip_binary(lone))
          .substr(kFramePrefixBytes));
  ASSERT_TRUE(lone_response.has_value());
  EXPECT_FALSE(lone_response->ok);
  EXPECT_EQ(lone_response->code, ErrorCode::kMalformed);

  // Unknown trace-block version: rejected, id still echoed.
  std::string bad = encode_frame_with_trace(encode_request(request), 9, ctx);
  bad[kFramePrefixBytes + kFrameIdBytes] = 9;  // version byte.
  const std::string bad_frame = transport.roundtrip_binary(bad);
  const auto bad_response = decode_response(std::string_view(bad_frame).substr(
      kFramePrefixBytes + kFrameIdBytes));
  ASSERT_TRUE(bad_response.has_value());
  EXPECT_FALSE(bad_response->ok);
  EXPECT_EQ(bad_response->code, ErrorCode::kMalformed);
}

TEST_F(TransportTest, TracedTextLineExecutesAndMalformedContextErrs) {
  InProcessTransport transport(engine_, &metrics_);
  EXPECT_EQ(transport.roundtrip_text("#31@7:19:1000 fleet-power"),
            "#31 OK 24 72");
  EXPECT_EQ(transport.roundtrip_text("#31@7:19 fleet-power"),
            "#31 ERR 1 malformed trace context");
}

TEST_F(ServerTest, TracedQueriesRoundTripOverTcpAndSurviveMalformedContext) {
  Server server(engine_, metrics_, quick_options());
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kFleetPower;
  TraceContextWire ctx;
  ctx.trace_id = 404;
  ctx.parent_span = 17;
  ctx.budget_us = 250000;
  Response response = client.query_with_trace(request, 61, ctx);
  ASSERT_TRUE(response.ok);
  EXPECT_DOUBLE_EQ(response.values.at(0), 72.0);

  // A traced frame with an unknown block version: answered kMalformed with
  // the id echoed, and the connection stays usable — the frame length is
  // still trusted for resync.
  std::string bad = encode_frame_with_trace(encode_request(request), 62, ctx);
  bad[kFramePrefixBytes + kFrameIdBytes] = 9;
  client.send_raw(bad);
  const auto [echoed, error] = client.recv_response_with_id();
  EXPECT_EQ(echoed, 62u);
  EXPECT_FALSE(error.ok);
  EXPECT_EQ(error.code, ErrorCode::kMalformed);

  response = client.query_with_trace(request, 63, ctx);
  EXPECT_TRUE(response.ok);

  // Text protocol on the same server: traced line executes, malformed
  // context errs with the id echo, and the connection survives both.
  Client text_client(server.port());
  EXPECT_EQ(text_client.query_text("#9@404:17:250000 fleet-power"),
            "#9 OK 24 72");
  EXPECT_EQ(text_client.query_text("#10@404 fleet-power"),
            "#10 ERR 1 malformed trace context");
  EXPECT_EQ(text_client.query_text("fleet-power"), "OK 24 72");
  server.stop();
}

// --- per-query profiling + SLO health ---------------------------------------

TEST_F(ServerTest, ProfilerRecordsStageBreakdownAndHealthScrapeRendersIt) {
  obs::SloOptions slo_options;
  slo_options.latency_threshold_s = 0.5;
  slo_options.metrics = &metrics_;
  obs::SloTracker slo(slo_options);
  ServeProfiler profiler({.slow_threshold_s = 10.0,  // nothing "slow" here.
                          .metrics = &metrics_,
                          .slo = &slo});
  ServerOptions options = quick_options();
  options.profiler = &profiler;
  Server server(engine_, metrics_, options);
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kFleetPower;
  for (std::uint64_t i = 1; i <= 8; ++i)
    ASSERT_TRUE(client.query_with_id(request, i).ok);
  ASSERT_TRUE(client.query(request).ok);  // ordered path profiles too.

  // Wait until the last write-side observe lands (answered != observed
  // ordering is possible for an instant after recv).
  for (int spin = 0; spin < 1000 && profiler.observed() < 9; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(profiler.observed(), 9u);
  EXPECT_EQ(profiler.total_sketch().count(), 9u);
  EXPECT_EQ(profiler.stage_sketch(Stage::kExecute).count(), 9u);
  // Every profiled stage is nonnegative and total covers the sum of stages.
  const auto slow = profiler.slow_queries();
  EXPECT_TRUE(slow.empty());

  // Counter/gauge checks happen before the scrape: the HEALTH request is
  // itself profiled once it completes, so post-scrape counts are racy.
  profiler.publish();
  const std::string dump = metrics_.to_prometheus();
  EXPECT_NE(dump.find("vmpower_serve_stage_latency_seconds{stage=\"execute\","
                      "q=\"p50\"}"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_serve_profiled_total 9"), std::string::npos);
  EXPECT_NE(dump.find("vmpower_slo_requests_total 9"), std::string::npos);

  // The protocol sniff latches per connection; scrape over a fresh text one.
  Client scraper(server.port());
  const std::string health = scraper.scrape("HEALTH");
  EXPECT_NE(health.find("health queries=9"), std::string::npos);
  EXPECT_NE(health.find("stage execute count=9"), std::string::npos);
  EXPECT_NE(health.find("stage queue_wait"), std::string::npos);
  EXPECT_NE(health.find("stage total"), std::string::npos);
  EXPECT_NE(health.find("slo latency window=fast"), std::string::npos);
  server.stop();
}

TEST_F(ServerTest, BudgetOverrunAndSlowThresholdFeedTheSlowQueryLog) {
  ServeProfiler profiler({.slow_threshold_s = 0.040, .metrics = &metrics_});
  ServerOptions options = quick_options();
  options.profiler = &profiler;
  options.worker_delay = std::chrono::milliseconds(60);
  Server server(engine_, metrics_, options);
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kFleetPower;
  // Budget overrun outranks the plain threshold as the logged trigger.
  TraceContextWire ctx;
  ctx.trace_id = 505;
  ctx.budget_us = 1000;  // 1 ms against a 60 ms stall.
  ASSERT_TRUE(client.query_with_trace(request, 1, ctx).ok);
  // Untraced slow query: threshold trigger.
  ASSERT_TRUE(client.query_with_id(request, 2).ok);

  for (int spin = 0; spin < 1000 && profiler.observed() < 2; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto slow = profiler.slow_queries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_STREQ(slow[0].trigger, "budget");
  EXPECT_EQ(slow[0].profile.trace_id, 505u);
  EXPECT_EQ(slow[0].profile.budget_us, 1000u);
  EXPECT_GT(slow[0].profile.total_s, 0.05);
  EXPECT_STREQ(slow[1].trigger, "threshold");
  // Counter checks before the scrape: the 60 ms-stalled HEALTH request will
  // itself enter the slow log once it completes.
  const std::string dump = metrics_.to_prometheus();
  EXPECT_NE(
      dump.find("vmpower_serve_slow_queries_total{trigger=\"budget\"} 1"),
      std::string::npos);
  EXPECT_NE(
      dump.find("vmpower_serve_slow_queries_total{trigger=\"threshold\"} 1"),
      std::string::npos);
  // The slow-query log line carries the trigger, trace id, and breakdown.
  // (Fresh connection: the sniff latched this one as binary.)
  Client scraper(server.port());
  const std::string health = scraper.scrape("HEALTH");
  EXPECT_NE(health.find("slowq seq=0 trigger=budget"), std::string::npos);
  EXPECT_NE(health.find("trace=505"), std::string::npos);
  EXPECT_NE(health.find("trigger=threshold"), std::string::npos);
  server.stop();
}

TEST_F(ServerTest, ShedsUnderFaultInjectionKeepAccountingAndBurnTheSlo) {
  // Fault injection: an empty token bucket sheds hard, and every shed must
  // (a) keep the exactly-once response balance and (b) burn the
  // availability SLO — an answered error is still a failed query.
  obs::SloOptions slo_options;
  slo_options.latency_threshold_s = 10.0;
  slo_options.metrics = &metrics_;
  obs::SloTracker slo(slo_options);
  ServeProfiler profiler({.slow_threshold_s = 10.0,
                          .metrics = &metrics_,
                          .slo = &slo});
  ServerOptions options = quick_options();
  options.profiler = &profiler;
  options.tokens_per_s = 0.001;
  options.token_burst = 2.0;  // two tokens, then sheds.
  Server server(engine_, metrics_, options);
  Client client(server.port());

  Request request;
  request.kind = QueryKind::kFleetPower;
  std::size_t ok = 0, shed = 0;
  for (std::uint64_t i = 1; i <= 8; ++i) {
    const Response response = client.query_with_id(request, i);
    if (response.ok)
      ++ok;
    else if (response.code == ErrorCode::kThrottled)
      ++shed;
  }
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(shed, 6u);

  for (int spin = 0; spin < 1000 && profiler.observed() < 8; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Every request — sheds included — was profiled exactly once, and the
  // server's exactly-once balance holds.
  EXPECT_EQ(profiler.observed(), 8u);
  EXPECT_EQ(server.admitted(), 8u);
  EXPECT_EQ(server.answered(), 8u);
  EXPECT_EQ(server.outstanding(), 0u);

  const auto health = slo.health();
  EXPECT_EQ(health.availability_fast.total, 8u);
  EXPECT_EQ(health.availability_fast.bad, 6u);
  EXPECT_GT(health.availability_fast.burn_rate, 100.0);
  // Scrape over a fresh connection: this one's bucket is empty and would
  // shed the HEALTH line itself.
  Client scraper(server.port());
  const std::string text = scraper.scrape("HEALTH");
  EXPECT_NE(text.find("slo availability window=fast"), std::string::npos);
  EXPECT_NE(text.find("bad=6"), std::string::npos);
  server.stop();
}

TEST_F(ServerTest, HealthScrapeWithoutProfilerSaysSo) {
  Server server(engine_, metrics_, quick_options());
  Client client(server.port());
  EXPECT_EQ(client.scrape("HEALTH"), "health profiler=off\n");
  server.stop();
}

}  // namespace
}  // namespace vmp::serve
