#include "core/online.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "workload/primitives.hpp"

namespace vmp::core {
namespace {

using common::StateVector;

class MeteringLoopTest : public ::testing::Test {
 protected:
  sim::MachineSpec spec_ = [] {
    sim::MachineSpec s = sim::xeon_prototype();
    s.meter_noise_sigma_w = 0.0;
    s.meter_quantum_w = 0.0;
    s.affinity_jitter = 0.0;
    return s;
  }();

  OfflineDataset dataset_ = [this] {
    CollectionOptions options;
    options.duration_s = 60.0;
    return collect_offline_dataset(
        spec_, {common::demo_c_vm(), common::demo_c_vm()}, options);
  }();
};

TEST_F(MeteringLoopTest, StepProducesConsistentSample) {
  sim::PhysicalMachine machine(spec_, 1);
  const auto id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               StateVector::cpu_only(1.0)));
  machine.hypervisor().start_vm(id);

  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  MeteringLoop loop(machine, estimator);
  const MeteringSample sample = loop.step();

  EXPECT_DOUBLE_EQ(sample.time_s, 1.0);
  EXPECT_GT(sample.meter_power_w, spec_.idle_power_w);
  EXPECT_NEAR(sample.adjusted_power_w,
              sample.meter_power_w - spec_.idle_power_w, 1e-9);
  ASSERT_EQ(sample.vms.size(), 1u);
  ASSERT_EQ(sample.phi.size(), 1u);
  EXPECT_NEAR(sample.phi[0], sample.adjusted_power_w, 1e-9);  // efficiency
  EXPECT_EQ(loop.steps(), 1u);
}

TEST_F(MeteringLoopTest, IdleMachineYieldsEmptyPhi) {
  sim::PhysicalMachine machine(spec_, 1);
  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  MeteringLoop loop(machine, estimator);
  const MeteringSample sample = loop.step();
  EXPECT_TRUE(sample.vms.empty());
  EXPECT_TRUE(sample.phi.empty());
  EXPECT_DOUBLE_EQ(sample.adjusted_power_w, 0.0);
}

TEST_F(MeteringLoopTest, AccountantReceivesEveryStep) {
  sim::PhysicalMachine machine(spec_, 1);
  const auto id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               StateVector::cpu_only(0.8)));
  machine.hypervisor().start_vm(id);

  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  EnergyAccountant accountant(IdleAttribution::kNone);
  MeteringLoop loop(machine, estimator, 1.0, &accountant);
  loop.run(30.0);
  EXPECT_EQ(loop.steps(), 30u);
  EXPECT_DOUBLE_EQ(accountant.accounted_seconds(), 30.0);
  EXPECT_GT(accountant.energy_j(id), 0.0);
}

TEST_F(MeteringLoopTest, RunInvokesCallbackPerPeriod) {
  sim::PhysicalMachine machine(spec_, 1);
  const auto id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               StateVector::cpu_only(0.5)));
  machine.hypervisor().start_vm(id);
  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  MeteringLoop loop(machine, estimator, 0.5);
  int calls = 0;
  double total_phi = 0.0;
  loop.run(5.0, [&](const MeteringSample& sample) {
    ++calls;
    total_phi += std::accumulate(sample.phi.begin(), sample.phi.end(), 0.0);
  });
  EXPECT_EQ(calls, 10);
  EXPECT_GT(total_phi, 0.0);
}

TEST_F(MeteringLoopTest, Validation) {
  sim::PhysicalMachine machine(spec_, 1);
  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  EXPECT_THROW(MeteringLoop(machine, estimator, 0.0), std::invalid_argument);
  MeteringLoop loop(machine, estimator);
  EXPECT_THROW(loop.run(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::core
