#include "core/online.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "workload/primitives.hpp"

namespace vmp::core {
namespace {

using common::StateVector;

class MeteringLoopTest : public ::testing::Test {
 protected:
  sim::MachineSpec spec_ = [] {
    sim::MachineSpec s = sim::xeon_prototype();
    s.meter_noise_sigma_w = 0.0;
    s.meter_quantum_w = 0.0;
    s.affinity_jitter = 0.0;
    return s;
  }();

  OfflineDataset dataset_ = [this] {
    CollectionOptions options;
    options.duration_s = 60.0;
    return collect_offline_dataset(
        spec_, {common::demo_c_vm(), common::demo_c_vm()}, options);
  }();
};

TEST_F(MeteringLoopTest, StepProducesConsistentSample) {
  sim::PhysicalMachine machine(spec_, 1);
  const auto id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               StateVector::cpu_only(1.0)));
  machine.hypervisor().start_vm(id);

  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  MeteringLoop loop(machine, estimator);
  const MeteringSample sample = loop.step();

  EXPECT_DOUBLE_EQ(sample.time_s, 1.0);
  EXPECT_GT(sample.meter_power_w, spec_.idle_power_w);
  EXPECT_NEAR(sample.adjusted_power_w,
              sample.meter_power_w - spec_.idle_power_w, 1e-9);
  ASSERT_EQ(sample.vms.size(), 1u);
  ASSERT_EQ(sample.phi.size(), 1u);
  EXPECT_NEAR(sample.phi[0], sample.adjusted_power_w, 1e-9);  // efficiency
  EXPECT_EQ(loop.steps(), 1u);
}

TEST_F(MeteringLoopTest, IdleMachineYieldsEmptyPhi) {
  sim::PhysicalMachine machine(spec_, 1);
  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  MeteringLoop loop(machine, estimator);
  const MeteringSample sample = loop.step();
  EXPECT_TRUE(sample.vms.empty());
  EXPECT_TRUE(sample.phi.empty());
  EXPECT_DOUBLE_EQ(sample.adjusted_power_w, 0.0);
}

TEST_F(MeteringLoopTest, AccountantReceivesEveryStep) {
  sim::PhysicalMachine machine(spec_, 1);
  const auto id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               StateVector::cpu_only(0.8)));
  machine.hypervisor().start_vm(id);

  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  EnergyAccountant accountant(IdleAttribution::kNone);
  MeteringLoop loop(machine, estimator, 1.0, &accountant);
  loop.run(30.0);
  EXPECT_EQ(loop.steps(), 30u);
  EXPECT_DOUBLE_EQ(accountant.accounted_seconds(), 30.0);
  EXPECT_GT(accountant.energy_j(id), 0.0);
}

TEST_F(MeteringLoopTest, RunInvokesCallbackPerPeriod) {
  sim::PhysicalMachine machine(spec_, 1);
  const auto id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               StateVector::cpu_only(0.5)));
  machine.hypervisor().start_vm(id);
  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  MeteringLoop loop(machine, estimator, 0.5);
  int calls = 0;
  double total_phi = 0.0;
  loop.run(5.0, [&](const MeteringSample& sample) {
    ++calls;
    total_phi += std::accumulate(sample.phi.begin(), sample.phi.end(), 0.0);
  });
  EXPECT_EQ(calls, 10);
  EXPECT_GT(total_phi, 0.0);
}

TEST_F(MeteringLoopTest, ZeroRunningVmsMidRunStopsAccounting) {
  sim::PhysicalMachine machine(spec_, 1);
  const auto id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               StateVector::cpu_only(0.9)));
  machine.hypervisor().start_vm(id);

  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  EnergyAccountant accountant(IdleAttribution::kNone);
  MeteringLoop loop(machine, estimator, 1.0, &accountant);
  loop.run(5.0);
  const double energy_before = accountant.energy_j(id);
  const double seconds_before = accountant.accounted_seconds();
  EXPECT_GT(energy_before, 0.0);

  // The fleet engine relies on empty ticks being cheap no-ops: once the last
  // VM stops, phi must be empty and nothing further may be accounted.
  machine.hypervisor().stop_vm(id);
  for (int i = 0; i < 3; ++i) {
    const MeteringSample sample = loop.step();
    EXPECT_TRUE(sample.vms.empty());
    EXPECT_TRUE(sample.phi.empty());
  }
  EXPECT_DOUBLE_EQ(accountant.energy_j(id), energy_before);
  EXPECT_DOUBLE_EQ(accountant.accounted_seconds(), seconds_before);
  EXPECT_EQ(loop.steps(), 8u);  // empty ticks still advance the loop clock.
}

TEST_F(MeteringLoopTest, DetachedAccountantStaysUntouched) {
  sim::PhysicalMachine machine(spec_, 1);
  const auto id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               StateVector::cpu_only(0.8)));
  machine.hypervisor().start_vm(id);
  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  EnergyAccountant accountant(IdleAttribution::kNone);

  // Detached loop: estimates flow, the accountant never hears of them.
  MeteringLoop detached(machine, estimator, 1.0, /*accountant=*/nullptr);
  detached.run(10.0);
  EXPECT_DOUBLE_EQ(accountant.energy_j(id), 0.0);
  EXPECT_DOUBLE_EQ(accountant.accounted_seconds(), 0.0);

  // An attached loop over the same machine picks up from here; only its own
  // steps are billed.
  MeteringLoop attached(machine, estimator, 1.0, &accountant);
  attached.run(4.0);
  EXPECT_GT(accountant.energy_j(id), 0.0);
  EXPECT_DOUBLE_EQ(accountant.accounted_seconds(), 4.0);
}

TEST_F(MeteringLoopTest, PeriodBoundaryRoundsToNearestWholeStep) {
  sim::PhysicalMachine machine(spec_, 1);
  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);

  // Exact multiple: 0.9 / 0.45 = 2 steps, clock lands on the boundary.
  MeteringLoop even(machine, estimator, 0.45);
  even.run(0.9);
  EXPECT_EQ(even.steps(), 2u);
  EXPECT_NEAR(machine.now(), 0.9, 1e-12);

  // Non-multiple durations round to the nearest whole period (the documented
  // Fig. 8 cadence: the loop never takes fractional steps): 1.0 / 0.3 ->
  // round(3.33) = 3 steps.
  sim::PhysicalMachine second(spec_, 1);
  MeteringLoop uneven(second, estimator, 0.3);
  uneven.run(1.0);
  EXPECT_EQ(uneven.steps(), 3u);
  EXPECT_NEAR(second.now(), 0.9, 1e-12);
}

TEST_F(MeteringLoopTest, Validation) {
  sim::PhysicalMachine machine(spec_, 1);
  ShapleyVhcEstimator estimator(dataset_.universe, dataset_.approximation);
  EXPECT_THROW(MeteringLoop(machine, estimator, 0.0), std::invalid_argument);
  MeteringLoop loop(machine, estimator);
  EXPECT_THROW(loop.run(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::core
