#include "core/shapley_fast.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/estimator.hpp"
#include "core/vhc.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vmp::core {
namespace {

using common::Component;
using common::StateVector;

// --- symmetry detection ------------------------------------------------------

TEST(DetectSymmetry, GroupsByKeyAndExactState) {
  const std::vector<std::size_t> keys = {0, 0, 1, 0, 1};
  const std::vector<StateVector> states = {
      StateVector::cpu_only(0.5), StateVector::cpu_only(0.5),
      StateVector::cpu_only(0.5), StateVector::cpu_only(0.25),
      StateVector::cpu_only(0.5)};
  const SymmetryGroups groups = detect_symmetry(keys, states);
  // {0,1} share key 0 + state; {2,4} share key 1 + state; {3} differs by
  // state despite key 0.
  ASSERT_EQ(groups.group_count(), 3u);
  EXPECT_EQ(groups.group_of[0], groups.group_of[1]);
  EXPECT_EQ(groups.group_of[2], groups.group_of[4]);
  EXPECT_NE(groups.group_of[0], groups.group_of[3]);
  EXPECT_NE(groups.group_of[0], groups.group_of[2]);
  EXPECT_EQ(groups.composition_count(), 3u * 3u * 2u);
  EXPECT_FALSE(groups.all_distinct());
  EXPECT_THROW(
      detect_symmetry(std::vector<std::size_t>{0},
                      std::vector<StateVector>{}),
      std::invalid_argument);
}

// --- grouped (symmetry-collapsed) solver ------------------------------------

/// A game that is symmetric within each group by construction: the worth
/// depends only on the per-group member counts, via random additive and
/// multiplicative composition tables.
struct SymmetricGame {
  SymmetryGroups groups;
  std::vector<std::vector<double>> add;  // group -> per-count term.
  std::vector<std::vector<double>> mul;  // group -> per-count factor.

  [[nodiscard]] WorthFn worth() const {
    return [this](Coalition s) {
      std::vector<std::size_t> count(groups.group_count(), 0);
      for (Player i = 0; i < groups.player_count(); ++i)
        if (s.contains(i)) ++count[groups.group_of[i]];
      double sum = 0.0, prod = 1.0;
      for (std::size_t g = 0; g < groups.group_count(); ++g) {
        sum += add[g][count[g]];
        prod *= mul[g][count[g]];
      }
      return sum + prod;
    };
  }
};

SymmetricGame random_symmetric_game(std::size_t n_groups,
                                    std::size_t max_group_size,
                                    util::Rng& rng) {
  SymmetricGame game;
  std::size_t player = 0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const auto size = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_group_size)));
    game.groups.members.emplace_back();
    for (std::size_t k = 0; k < size; ++k) {
      game.groups.members[g].push_back(player++);
      game.groups.group_of.push_back(g);
    }
    game.add.emplace_back();
    game.mul.emplace_back();
    for (std::size_t k = 0; k <= size; ++k) {
      game.add[g].push_back(rng.uniform(-5.0, 20.0));
      game.mul[g].push_back(rng.uniform(0.5, 1.5));
    }
  }
  return game;
}

TEST(GroupedShapley, MatchesMaskSweepOnRandomizedSymmetricGames) {
  util::Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    const auto n_groups =
        static_cast<std::size_t>(rng.uniform_int(1, 5));  // 1..5 "types".
    const SymmetricGame game = random_symmetric_game(n_groups, 4, rng);
    const std::size_t n = game.groups.player_count();
    if (n > 14) continue;  // keep the reference sweep fast.

    const WorthFn v = game.worth();
    const auto collapsed = shapley_values_grouped(game.groups, v);
    const auto sweep = shapley_values(n, v);
    ASSERT_EQ(collapsed.size(), sweep.size());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(collapsed[i], sweep[i], 1e-12)
          << "trial " << trial << " player " << i << " (n=" << n
          << ", groups=" << n_groups << ")";
  }
}

TEST(GroupedShapley, AllDistinctFallbackEqualsSweep) {
  // Singleton groups degenerate to the plain mask sweep (every composition
  // is a mask); results must agree exactly to rounding.
  util::Rng rng(7);
  const std::size_t n = 6;
  std::vector<double> worth_table(std::size_t{1} << n);
  for (auto& w : worth_table) w = rng.uniform(0.0, 50.0);
  worth_table[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth_table[s.mask()]; };

  SymmetryGroups singletons;
  for (Player i = 0; i < n; ++i) {
    singletons.group_of.push_back(i);
    singletons.members.push_back({i});
  }
  EXPECT_TRUE(singletons.all_distinct());
  EXPECT_EQ(singletons.composition_count(), std::size_t{1} << n);

  const auto grouped = shapley_values_grouped(singletons, v);
  const auto sweep = shapley_values(n, v);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(grouped[i], sweep[i], 1e-12);
}

TEST(GroupedShapley, SinglePlayerEdge) {
  SymmetryGroups one;
  one.group_of = {0};
  one.members = {{0}};
  const auto phi = shapley_values_grouped(
      one, [](Coalition s) { return s.is_empty() ? 0.0 : 17.5; });
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_DOUBLE_EQ(phi[0], 17.5);
}

TEST(GroupedShapley, RejectsMalformedGroups) {
  SymmetryGroups empty;
  EXPECT_THROW(shapley_values_grouped(empty, [](Coalition) { return 0.0; }),
               std::invalid_argument);
  SymmetryGroups holes;  // group_of says 2 players, members cover 1.
  holes.group_of = {0, 0};
  holes.members = {{0}};
  EXPECT_THROW(shapley_values_grouped(holes, [](Coalition) { return 0.0; }),
               std::invalid_argument);
}

TEST(GroupedShapley, EfficiencyOnFullySymmetricGame) {
  // n identical players: everyone gets v(N)/n.
  SymmetryGroups groups;
  const std::size_t n = 8;
  groups.members.emplace_back();
  for (Player i = 0; i < n; ++i) {
    groups.group_of.push_back(0);
    groups.members[0].push_back(i);
  }
  const WorthFn v = [](Coalition s) {
    const auto k = static_cast<double>(s.size());
    return 10.0 * k + 0.5 * k * k;  // superadditive, symmetric.
  };
  const auto phi = shapley_values_grouped(groups, v);
  const double expected = v(Coalition::grand(n)) / static_cast<double>(n);
  for (const double p : phi) EXPECT_NEAR(p, expected, 1e-12);
}

// --- parallel mask sweep -----------------------------------------------------

TEST(ParallelShapley, ByteIdenticalAcrossPoolSizesAndNearSerial) {
  util::Rng rng(11);
  const std::size_t n = 10;
  std::vector<double> worth_table(std::size_t{1} << n);
  for (auto& w : worth_table) w = rng.uniform(0.0, 100.0);
  worth_table[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth_table[s.mask()]; };

  const auto serial = shapley_values(n, v);
  std::vector<std::vector<double>> runs;
  for (const std::size_t threads : {1u, 2u, 3u, 7u}) {
    util::ThreadPool pool(threads);
    runs.push_back(shapley_values_parallel(n, v, pool));
  }
  for (std::size_t run = 1; run < runs.size(); ++run)
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(runs[0][i], runs[run][i])  // exact, not NEAR.
          << "pool-size run " << run << " player " << i;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(runs[0][i], serial[i], 1e-9);
}

TEST(ParallelShapley, PropagatesWorthExceptions) {
  util::ThreadPool pool(3);
  const WorthFn v = [](Coalition s) -> double {
    if (s.size() > 2) throw std::runtime_error("boom");
    return 1.0;
  };
  EXPECT_THROW(shapley_values_parallel(6, v, pool), std::runtime_error);
  EXPECT_THROW(shapley_values_parallel(0, [](Coalition) { return 0.0; }, pool),
               std::invalid_argument);
}

// --- ComboWeightCache --------------------------------------------------------

/// Trains a 3-VHC approximation on an exact linear law, leaving the grand
/// combo {0,1,2} unfitted so predict() must use its disjoint-cover fallback.
VhcLinearApprox partial_three_vhc_approx(util::Rng& rng) {
  VscTable table(3, 0.01);
  const double w[3] = {8.0, 5.0, 3.0};  // CPU weight per VHC.
  for (VhcComboMask combo = 1; combo < 8; ++combo) {
    if (combo == 0b111) continue;  // grand combo never measured.
    for (int s = 0; s < 150; ++s) {
      std::vector<StateVector> states(3);
      double power = 0.0;
      for (std::size_t j = 0; j < 3; ++j) {
        if (((combo >> j) & 1u) == 0) continue;
        const double cpu = rng.uniform(0.0, 2.0);
        states[j] = StateVector::cpu_only(cpu);
        power += w[j] * cpu;
      }
      table.record(combo, states, power);
    }
  }
  return VhcLinearApprox::fit(table);
}

TEST(ComboWeightCache, MatchesPredictForFittedAndCoveredCombos) {
  util::Rng rng(3);
  const VhcLinearApprox approx = partial_three_vhc_approx(rng);
  ComboWeightCache cache;
  cache.bind(&approx);
  ASSERT_TRUE(cache.usable());

  for (int s = 0; s < 20; ++s) {
    std::vector<StateVector> states(3);
    for (auto& state : states) {
      state[Component::kCpu] = rng.uniform(0.0, 2.0);
      state[Component::kMemory] = rng.uniform(0.0, 1.0);
    }
    for (VhcComboMask combo = 1; combo < 8; ++combo) {
      // Zero out states outside the combo, as the estimator does.
      std::vector<StateVector> masked(3);
      for (std::size_t j = 0; j < 3; ++j)
        if ((combo >> j) & 1u) masked[j] = states[j];
      // 0b111 is unfitted: both sides must agree on the cover fallback too.
      EXPECT_NEAR(cache.predict(combo, masked), approx.predict(combo, masked),
                  1e-9)
          << "combo " << combo;
    }
  }
}

TEST(ComboWeightCache, UncoverableComboThrowsLikePredict) {
  // Only combo {0} fitted: {1} has no cover.
  VscTable table(2, 0.01);
  util::Rng rng(5);
  for (int s = 0; s < 100; ++s) {
    const double cpu = rng.uniform(0.0, 2.0);
    table.record(0b01, {{StateVector::cpu_only(cpu), StateVector::zero()}},
                 4.0 * cpu);
  }
  const VhcLinearApprox approx = VhcLinearApprox::fit(table);
  ComboWeightCache cache;
  cache.bind(&approx);
  EXPECT_THROW((void)cache.effective_weights(0b10), std::out_of_range);
  EXPECT_THROW((void)cache.effective_weights(0b10), std::out_of_range);  // memoized.
  ComboWeightCache unbound;
  EXPECT_THROW((void)unbound.effective_weights(1), std::logic_error);
}

// --- ShapleyVhcEstimator kernel equivalence ---------------------------------

/// Trains an approximation with every combo of an r-VHC universe fitted on a
/// random linear law, plus the table itself for lookup-first tests.
struct TrainedPipeline {
  VscTable table;
  VhcLinearApprox approx;
};

TrainedPipeline full_pipeline(std::size_t r, util::Rng& rng) {
  VscTable table(r, 0.01);
  std::vector<double> w(r);
  for (auto& x : w) x = rng.uniform(2.0, 12.0);
  for (VhcComboMask combo = 1; combo < (VhcComboMask{1} << r); ++combo) {
    for (int s = 0; s < 150; ++s) {
      std::vector<StateVector> states(r);
      double power = 0.0;
      for (std::size_t j = 0; j < r; ++j) {
        if (((combo >> j) & 1u) == 0) continue;
        const double cpu = rng.uniform(0.0, 2.0);
        states[j] = StateVector::cpu_only(cpu);
        power += w[j] * cpu;
      }
      table.record(combo, states, power);
    }
  }
  VhcLinearApprox approx = VhcLinearApprox::fit(table);
  return {std::move(table), std::move(approx)};
}

/// The pre-kernel estimator semantics, restated with public APIs: anchored
/// grand, idle filtering, table-lookup-first, approximation fallback.
std::vector<double> reference_estimate(const VhcUniverse& universe,
                                       const VhcLinearApprox& approx,
                                       const VscTable* table, bool anchor,
                                       std::span<const VmSample> vms,
                                       double adjusted_power_w) {
  std::vector<common::VmTypeId> types;
  for (const VmSample& vm : vms) types.push_back(vm.type);
  const VhcPartition partition(universe, types);
  std::vector<StateVector> states;
  for (const VmSample& vm : vms) states.push_back(vm.state);
  const Coalition grand = Coalition::grand(vms.size());

  return nondet_shapley_values(
      states, [&](Coalition s, std::span<const StateVector> c) {
        if (s.is_empty()) return 0.0;
        if (anchor && s == grand) return adjusted_power_w;
        Coalition active = s;
        for (Player i : s.members())
          if (c[i] == StateVector::zero()) active = active.without(i);
        if (active.is_empty()) return 0.0;
        const auto aggregated = partition.aggregate(active, c);
        const VhcComboMask combo = partition.combo_of(active);
        if (table != nullptr)
          if (const auto hit = table->lookup(combo, aggregated)) return *hit;
        return approx.predict(combo, aggregated);
      });
}

std::vector<VmSample> mixed_fleet(util::Rng& rng, std::size_t n,
                                  std::size_t n_types, bool duplicate_states) {
  std::vector<VmSample> vms;
  for (std::size_t i = 0; i < n; ++i) {
    VmSample vm;
    vm.vm_id = static_cast<std::uint32_t>(i);
    vm.type = static_cast<common::VmTypeId>(i % n_types);
    if (duplicate_states) {
      // Two distinct state values per type: guarantees symmetric pairs.
      vm.state = StateVector::cpu_only(0.25 + 0.5 * ((i / n_types) % 2));
    } else {
      vm.state = StateVector::cpu_only(rng.uniform(0.05, 1.0));
    }
    vms.push_back(vm);
  }
  return vms;
}

TEST(ShapleyVhcEstimatorFast, CollapsedPathMatchesReference) {
  util::Rng rng(21);
  const auto pipeline = full_pipeline(3, rng);
  const VhcUniverse universe({0, 1, 2});
  for (const bool anchor : {true, false}) {
    ShapleyVhcEstimator estimator(universe, pipeline.approx, anchor);
    for (int round = 0; round < 3; ++round) {
      const auto vms = mixed_fleet(rng, 9, 3, /*duplicate_states=*/true);
      const double adjusted = 40.0 + 5.0 * round;
      const auto fast = estimator.estimate(vms, adjusted);
      const auto reference = reference_estimate(
          universe, pipeline.approx, nullptr, anchor, vms, adjusted);
      for (std::size_t i = 0; i < vms.size(); ++i)
        EXPECT_NEAR(fast[i], reference[i], 1e-9)
            << "anchor=" << anchor << " round=" << round << " vm " << i;
    }
    // mixed_fleet(9, 3, duplicate_states) yields 6 symmetry groups of sizes
    // {2,2,2,1,1,1}: 3^3 * 2^3 = 216 compositions per round instead of
    // 2^9 = 512 masks. Three rounds stay within 3 * 216 worth queries.
    EXPECT_LE(estimator.worth_queries(), 3u * 216u);
    EXPECT_LT(estimator.worth_queries(), 3u * 512u);
  }
}

TEST(ShapleyVhcEstimatorFast, SweepPathMatchesReferenceForDistinctStates) {
  util::Rng rng(22);
  const auto pipeline = full_pipeline(3, rng);
  const VhcUniverse universe({0, 1, 2});
  for (const bool anchor : {true, false}) {
    ShapleyVhcEstimator estimator(universe, pipeline.approx, anchor);
    const auto vms = mixed_fleet(rng, 8, 3, /*duplicate_states=*/false);
    const double adjusted = 55.0;
    const auto fast = estimator.estimate(vms, adjusted);
    const auto reference = reference_estimate(universe, pipeline.approx,
                                              nullptr, anchor, vms, adjusted);
    for (std::size_t i = 0; i < vms.size(); ++i)
      EXPECT_NEAR(fast[i], reference[i], 1e-9) << "anchor=" << anchor;
  }
}

TEST(ShapleyVhcEstimatorFast, TableLookupPathMatchesReference) {
  util::Rng rng(23);
  const auto pipeline = full_pipeline(2, rng);
  const VhcUniverse universe({0, 1});
  ShapleyVhcEstimator fast_estimator(universe, pipeline.approx, pipeline.table);
  // States on exact quantization multiples, so both paths land in the same
  // table cells; repeated estimates exercise the cross-tick memo.
  std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(0.25)},
                               {1, 0, StateVector::cpu_only(0.75)},
                               {2, 1, StateVector::cpu_only(0.5)},
                               {3, 1, StateVector::cpu_only(0.5)}};
  for (int round = 0; round < 3; ++round) {
    const double adjusted = 30.0 + round;
    const auto fast = fast_estimator.estimate(vms, adjusted);
    const auto reference = reference_estimate(
        universe, pipeline.approx, &pipeline.table, true, vms, adjusted);
    for (std::size_t i = 0; i < vms.size(); ++i)
      EXPECT_NEAR(fast[i], reference[i], 1e-9) << "round " << round;
  }
  EXPECT_GT(fast_estimator.table_hit_rate(), 0.0);
}

TEST(ShapleyVhcEstimatorFast, CompositionMemoReplaysTablePathExactly) {
  util::Rng rng(27);
  const auto pipeline = full_pipeline(2, rng);
  // Plant one guaranteed table cell — the composition holding exactly one
  // 0.25-cpu VM of type 0 — so the memo provably carries hits, not only
  // remembered misses.
  VscTable table = pipeline.table;
  table.record(0b01, {{StateVector::cpu_only(0.25), StateVector::zero()}},
               6.5);
  const VhcUniverse universe({0, 1});
  ShapleyVhcEstimator estimator(universe, pipeline.approx, table);

  // Dyadic states on quantization multiples: the collapsed kernel's k·s
  // group aggregation and the reference's member-by-member sum are both
  // exact, so 1e-12 measures accumulation order, not input rounding.
  std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(0.25)},
                               {1, 0, StateVector::cpu_only(0.25)},
                               {2, 0, StateVector::cpu_only(0.75)},
                               {3, 1, StateVector::cpu_only(0.5)},
                               {4, 1, StateVector::cpu_only(0.5)},
                               {5, 1, StateVector::cpu_only(0.5)}};

  const auto fresh = estimator.estimate(vms, 33.0);
  EXPECT_EQ(estimator.last_kernel(), "collapsed");
  const std::size_t queries_fresh = estimator.worth_queries();
  const double rate_fresh = estimator.table_hit_rate();
  EXPECT_GT(rate_fresh, 0.0);

  // Identical states next tick: the per-composition memo replays last
  // tick's table outcomes by index. Replay must be bit-identical to
  // re-probing — values and counters alike.
  const auto replay = estimator.estimate(vms, 33.0);
  for (std::size_t i = 0; i < vms.size(); ++i)
    EXPECT_EQ(fresh[i], replay[i]) << "memo replay diverged, vm " << i;
  EXPECT_EQ(estimator.worth_queries(), 2 * queries_fresh);
  EXPECT_DOUBLE_EQ(estimator.table_hit_rate(), rate_fresh);

  // Both ticks match the per-mask reference with the same table.
  const auto reference =
      reference_estimate(universe, pipeline.approx, &table, true, vms, 33.0);
  for (std::size_t i = 0; i < vms.size(); ++i)
    EXPECT_NEAR(replay[i], reference[i], 1e-12) << "vm " << i;

  // A moved state invalidates the memo; the rebuilt tick still matches.
  vms[2].state = StateVector::cpu_only(1.25);
  const auto moved = estimator.estimate(vms, 41.0);
  const auto moved_reference =
      reference_estimate(universe, pipeline.approx, &table, true, vms, 41.0);
  for (std::size_t i = 0; i < vms.size(); ++i)
    EXPECT_NEAR(moved[i], moved_reference[i], 1e-12)
        << "after invalidation, vm " << i;
}

TEST(ShapleyVhcEstimatorFast, IdleVmsAndCacheReuseAcrossTicks) {
  util::Rng rng(24);
  const auto pipeline = full_pipeline(2, rng);
  const VhcUniverse universe({0, 1});
  ShapleyVhcEstimator estimator(universe, pipeline.approx);
  // Idle VMs of *different* types are still symmetric dummies.
  const std::vector<VmSample> vms = {{0, 0, StateVector::cpu_only(0.8)},
                                     {1, 0, StateVector::zero()},
                                     {2, 1, StateVector::zero()},
                                     {3, 1, StateVector::cpu_only(0.4)}};
  const auto first = estimator.estimate(vms, 25.0);
  const auto again = estimator.estimate(vms, 25.0);
  const auto reference =
      reference_estimate(universe, pipeline.approx, nullptr, true, vms, 25.0);
  for (std::size_t i = 0; i < vms.size(); ++i) {
    EXPECT_EQ(first[i], again[i]) << "cache reuse changed the result, vm " << i;
    EXPECT_NEAR(first[i], reference[i], 1e-9) << "vm " << i;
  }
  // Anchoring pins v(N) to the measurement, so idle VMs absorb an equal slice
  // of the model/measurement gap — the two idle VMs collapse into one
  // symmetry group despite their different types and must split it exactly.
  EXPECT_EQ(first[1], first[2]);
  EXPECT_NEAR(std::accumulate(first.begin(), first.end(), 0.0), 25.0, 1e-9);

  // Without the anchor, worth never depends on idle players: Dummy axiom.
  ShapleyVhcEstimator unanchored(universe, pipeline.approx, /*anchor=*/false);
  const auto free_phi = unanchored.estimate(vms, 25.0);
  EXPECT_NEAR(free_phi[1], 0.0, 1e-9);
  EXPECT_NEAR(free_phi[2], 0.0, 1e-9);
}

TEST(ShapleyVhcEstimatorFast, SingleVmEdge) {
  util::Rng rng(25);
  const auto pipeline = full_pipeline(1, rng);
  ShapleyVhcEstimator estimator(VhcUniverse({0}), pipeline.approx);
  const std::vector<VmSample> one = {{0, 0, StateVector::cpu_only(0.6)}};
  const auto phi = estimator.estimate(one, 12.5);
  ASSERT_EQ(phi.size(), 1u);
  EXPECT_NEAR(phi[0], 12.5, 1e-12);  // anchored grand == the whole power.
}

TEST(ShapleyVhcEstimatorFast, ParallelSweepMatchesSerialExactly) {
  util::Rng rng(26);
  const auto pipeline = full_pipeline(2, rng);
  const VhcUniverse universe({0, 1});
  const auto vms = mixed_fleet(rng, 14, 2, /*duplicate_states=*/false);

  ShapleyVhcEstimator serial(universe, pipeline.approx);
  const auto serial_phi = serial.estimate(vms, 80.0);

  std::vector<std::vector<double>> runs;
  for (const std::size_t threads : {2u, 5u}) {
    util::ThreadPool pool(threads);
    ShapleyVhcEstimator parallel(universe, pipeline.approx);
    parallel.set_thread_pool(&pool, /*min_players=*/2);
    runs.push_back(parallel.estimate(vms, 80.0));
  }
  for (std::size_t i = 0; i < vms.size(); ++i) {
    EXPECT_EQ(runs[0][i], runs[1][i]) << "pool size changed phi, vm " << i;
    EXPECT_NEAR(runs[0][i], serial_phi[i], 1e-9) << "vm " << i;
  }
}

}  // namespace
}  // namespace vmp::core
