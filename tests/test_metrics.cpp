#include "fleet/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "fleet/engine.hpp"

namespace vmp::fleet {
namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  Metrics metrics;
  Counter& counter = metrics.counter("c_total", "a counter");
  counter.inc();
  counter.inc(4);
  EXPECT_EQ(counter.value(), 5u);

  Gauge& gauge = metrics.gauge("g", "a gauge");
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);

  HistogramMetric& histogram =
      metrics.histogram("h_seconds", "a histogram", 0.0, 1.0, 4);
  histogram.observe(0.1);
  histogram.observe(0.3);
  histogram.observe(0.9);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1.3);
}

TEST(Metrics, ReRegistrationReturnsSameInstrument) {
  Metrics metrics;
  Counter& first = metrics.counter("c_total", "help");
  Counter& again = metrics.counter("c_total", "different help ignored");
  EXPECT_EQ(&first, &again);
  first.inc();
  EXPECT_EQ(again.value(), 1u);
}

TEST(Metrics, KindConflictsAndReservedLabelsThrow) {
  Metrics metrics;
  metrics.counter("x", "h");
  EXPECT_THROW(metrics.gauge("x", "h"), std::invalid_argument);
  EXPECT_THROW(metrics.histogram("x", "h", 0, 1, 2), std::invalid_argument);
  // Labeled histograms are allowed, but `le` is reserved for the bucket
  // boundary the exporter appends itself.
  metrics.histogram("y{host=\"1\"}", "h", 0, 1, 2);
  EXPECT_THROW(metrics.histogram("z{le=\"0.5\"}", "h", 0, 1, 2),
               std::invalid_argument);
}

TEST(Metrics, LabeledHistogramMergesLeIntoExistingLabels) {
  Metrics metrics;
  HistogramMetric& fast =
      metrics.histogram("rpc_seconds{proto=\"binary\"}", "latency", 0.0, 2.0,
                        2);
  HistogramMetric& slow =
      metrics.histogram("rpc_seconds{proto=\"text\"}", "latency", 0.0, 2.0, 2);
  fast.observe(0.5);
  slow.observe(1.5);
  slow.observe(0.25);

  const std::string text = metrics.to_prometheus();
  // One family header; per-series buckets carry the user labels with le
  // merged after them, and sum/count keep the labels without le.
  EXPECT_NE(text.find("# TYPE rpc_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("rpc_seconds_bucket{proto=\"binary\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_seconds_bucket{proto=\"binary\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_seconds_bucket{proto=\"text\",le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_seconds_sum{proto=\"binary\"} 0.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("rpc_seconds_count{proto=\"text\"} 2\n"),
            std::string::npos);
  // The bare-family spellings must not appear for labeled series.
  EXPECT_EQ(text.find("rpc_seconds_sum "), std::string::npos);
  EXPECT_EQ(text.find("rpc_seconds_bucket{le="), std::string::npos);
}

TEST(Metrics, PrometheusTextFormat) {
  Metrics metrics;
  metrics.counter("vmp_ticks_total", "ticks").inc(7);
  metrics.gauge("vmp_depth", "queue depth").set(3);
  HistogramMetric& histogram =
      metrics.histogram("vmp_latency_seconds", "latency", 0.0, 2.0, 2);
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(1.6);

  const std::string text = metrics.to_prometheus();
  EXPECT_NE(text.find("# HELP vmp_ticks_total ticks\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vmp_ticks_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("vmp_ticks_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vmp_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("vmp_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE vmp_latency_seconds histogram\n"),
            std::string::npos);
  // Buckets are cumulative and close with +Inf/sum/count.
  EXPECT_NE(text.find("vmp_latency_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vmp_latency_seconds_bucket{le=\"2\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("vmp_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("vmp_latency_seconds_sum 3.6\n"), std::string::npos);
  EXPECT_NE(text.find("vmp_latency_seconds_count 3\n"), std::string::npos);
}

TEST(Metrics, LabeledSeriesShareOneFamilyHeader) {
  Metrics metrics;
  metrics.gauge("err{host=\"0\"}", "per-host error").set(1);
  metrics.gauge("err{host=\"1\"}", "per-host error").set(2);
  const std::string text = metrics.to_prometheus();
  // One HELP/TYPE pair for the family, two series lines.
  std::size_t helps = 0, pos = 0;
  while ((pos = text.find("# HELP err ", pos)) != std::string::npos) {
    ++helps;
    ++pos;
  }
  EXPECT_EQ(helps, 1u);
  EXPECT_NE(text.find("err{host=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("err{host=\"1\"} 2\n"), std::string::npos);
}

TEST(Metrics, LabelValuesEscapePerExpositionGrammar) {
  Metrics metrics;
  metrics
      .gauge(obs::labeled("path_bytes", {{"path", "C:\\tmp\n\"x\""}}),
             "bytes per path")
      .set(1);
  const std::string text = metrics.to_prometheus();
  // Backslash, newline, and double quote must all be escaped in the value.
  EXPECT_NE(text.find("path_bytes{path=\"C:\\\\tmp\\n\\\"x\\\"\"} 1\n"),
            std::string::npos);

  // HELP text escapes backslash and newline (but not quotes).
  Metrics help_metrics;
  help_metrics.counter("c_total", "line1\nline2 \\ end").inc();
  const std::string help_text = help_metrics.to_prometheus();
  EXPECT_NE(help_text.find("# HELP c_total line1\\nline2 \\\\ end\n"),
            std::string::npos);
}

TEST(Metrics, FamilyHeadersSurviveUnrelatedNamesSortingBetweenSeries) {
  // '_' (0x5f) sorts before '{' (0x7b): "err_rate" lands between "err" and
  // "err{...}" in plain name order. Grouping must be by family, not by
  // sorted-name adjacency, or HELP/TYPE would repeat.
  Metrics metrics;
  metrics.gauge("err{host=\"0\"}", "per-host error").set(1);
  metrics.gauge("err_rate", "error rate").set(0.5);
  metrics.gauge("err", "total error").set(3);
  const std::string text = metrics.to_prometheus();

  std::size_t err_helps = 0, pos = 0;
  while ((pos = text.find("# HELP err ", pos)) != std::string::npos) {
    ++err_helps;
    ++pos;
  }
  EXPECT_EQ(err_helps, 1u);
  // Both err series sit in one contiguous block after their header.
  const std::size_t header = text.find("# TYPE err gauge\n");
  const std::size_t plain = text.find("\nerr 3\n");
  const std::size_t labeled_series = text.find("err{host=\"0\"} 1\n");
  const std::size_t other_header = text.find("# HELP err_rate ");
  ASSERT_NE(header, std::string::npos);
  ASSERT_NE(plain, std::string::npos);
  ASSERT_NE(labeled_series, std::string::npos);
  ASSERT_NE(other_header, std::string::npos);
  EXPECT_LT(header, plain);
  EXPECT_LT(header, labeled_series);
  EXPECT_TRUE(other_header < header ||
              (other_header > plain && other_header > labeled_series));
}

TEST(Metrics, EmptyHistogramExposesZeroedCumulativeBuckets) {
  Metrics metrics;
  metrics.histogram("cold_seconds", "never observed", 0.0, 1.0, 2);
  const std::string text = metrics.to_prometheus();
  EXPECT_NE(text.find("# TYPE cold_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("cold_seconds_bucket{le=\"0.5\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("cold_seconds_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("cold_seconds_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("cold_seconds_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("cold_seconds_count 0\n"), std::string::npos);
}

TEST(Metrics, HistogramBucketsAreCumulativeAndOrdered) {
  Metrics metrics;
  HistogramMetric& histogram =
      metrics.histogram("lat_seconds", "latency", 0.0, 4.0, 4);
  // Boundary landing: a sample exactly on an inner edge goes to the upper
  // bin ([lo, hi) bins), and out-of-range samples clamp into the edge bins.
  histogram.observe(1.0);
  histogram.observe(-5.0);
  histogram.observe(99.0);
  const std::string text = metrics.to_prometheus();
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"3\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"4\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  // Cumulative counts never decrease across ascending le.
  std::vector<std::uint64_t> counts;
  std::size_t pos = 0;
  while ((pos = text.find("lat_seconds_bucket{le=", pos)) !=
         std::string::npos) {
    const std::size_t space = text.find(' ', pos);
    counts.push_back(std::stoull(text.substr(space + 1)));
    pos = space;
  }
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_TRUE(std::is_sorted(counts.begin(), counts.end()));
}

TEST(Metrics, DumpIsDeterministicallySorted) {
  Metrics metrics;
  metrics.counter("b_total", "b").inc();
  metrics.counter("a_total", "a").inc();
  const std::string text = metrics.to_prometheus();
  EXPECT_LT(text.find("a_total"), text.find("b_total"));
  EXPECT_EQ(text, metrics.to_prometheus());
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Metrics metrics;
  Counter& counter = metrics.counter("hits_total", "hits");
  HistogramMetric& histogram =
      metrics.histogram("obs_seconds", "obs", 0.0, 1.0, 10);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.inc();
        histogram.observe(0.5);
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, FleetExportsEstimatorLatencyAndTableHitRate) {
  // End-to-end presence check: a real engine run must export the estimator
  // observability added with the fast Shapley kernels — the per-call latency
  // histogram and the per-host table hit-rate gauge.
  const std::vector<common::VmConfig> fleet = {common::demo_c_vm(),
                                               common::demo_c_vm()};
  core::CollectionOptions collect;
  collect.duration_s = 10.0;
  const core::OfflineDataset dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), fleet, collect);

  FleetOptions options;
  options.hosts = 2;
  options.threads = 2;
  options.fleet_per_host = fleet;
  options.tenants = 2;
  options.retry_backoff_base = std::chrono::microseconds{0};
  FleetEngine engine(options, dataset);
  engine.run(3);

  const std::string text = engine.metrics().to_prometheus();
  EXPECT_NE(
      text.find("# TYPE vmpower_fleet_estimator_latency_seconds histogram"),
      std::string::npos);
  EXPECT_NE(text.find("vmpower_fleet_estimator_latency_seconds_count"),
            std::string::npos);
  EXPECT_NE(text.find("vmpower_fleet_table_hit_rate{host=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("vmpower_fleet_table_hit_rate{host=\"1\"}"),
            std::string::npos);
}

TEST(Metrics, WritePrometheusFailsOnBadPath) {
  Metrics metrics;
  metrics.counter("c_total", "c");
  EXPECT_THROW(metrics.write_prometheus("/nonexistent-dir/metrics.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace vmp::fleet
