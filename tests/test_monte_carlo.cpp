#include "core/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <tuple>

#include "core/shapley.hpp"
#include "util/rng.hpp"

namespace vmp::core {
namespace {

const WorthFn kTwoVmGame = [](Coalition s) {
  switch (s.size()) {
    case 0: return 0.0;
    case 1: return 13.0;
    default: return 20.0;
  }
};

TEST(MonteCarlo, ExactOnTinyGame) {
  // With n = 2 there are only two permutations; a handful of samples plus
  // antithetic pairing covers both, so the estimate is exact.
  const auto result =
      monte_carlo_shapley(2, kTwoVmGame, {.permutations = 50, .seed = 1});
  EXPECT_NEAR(result.values[0], 10.0, 1e-9);
  EXPECT_NEAR(result.values[1], 10.0, 1e-9);
}

TEST(MonteCarlo, EfficiencyHoldsPerPermutation) {
  // Each permutation's marginals telescope to v(N), so the estimate sums to
  // v(N) exactly regardless of sample count.
  util::Rng rng(3);
  std::vector<double> worth(32);
  for (double& w : worth) w = rng.uniform(0.0, 10.0);
  worth[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  const auto result = monte_carlo_shapley(5, v, {.permutations = 7, .seed = 2});
  const double total =
      std::accumulate(result.values.begin(), result.values.end(), 0.0);
  EXPECT_NEAR(total, worth.back(), 1e-9);
}

TEST(MonteCarlo, ConvergesToExactValues) {
  util::Rng rng(11);
  const std::size_t n = 8;
  std::vector<double> worth(std::size_t{1} << n);
  for (double& w : worth) w = rng.uniform(0.0, 100.0);
  worth[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  const auto exact = shapley_values(n, v);
  const auto estimate =
      monte_carlo_shapley(n, v, {.permutations = 4000, .seed = 5});
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(estimate.values[i], exact[i], 1.0) << "player " << i;
}

TEST(MonteCarlo, StandardErrorShrinksWithSamples) {
  util::Rng rng(13);
  const std::size_t n = 6;
  std::vector<double> worth(64);
  for (double& w : worth) w = rng.uniform(0.0, 100.0);
  worth[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  const auto small = monte_carlo_shapley(n, v, {.permutations = 50, .seed = 7});
  const auto large =
      monte_carlo_shapley(n, v, {.permutations = 5000, .seed = 7});
  double se_small = 0.0, se_large = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    se_small += small.std_errors[i];
    se_large += large.std_errors[i];
  }
  EXPECT_LT(se_large, se_small / 3.0);
}

TEST(MonteCarlo, ErrorBarsCoverTruth) {
  util::Rng rng(17);
  const std::size_t n = 7;
  std::vector<double> worth(128);
  for (double& w : worth) w = rng.uniform(0.0, 40.0);
  worth[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  const auto exact = shapley_values(n, v);
  const auto mc = monte_carlo_shapley(n, v, {.permutations = 2000, .seed = 9});
  int covered = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (std::abs(mc.values[i] - exact[i]) <= 4.0 * mc.std_errors[i]) ++covered;
  EXPECT_GE(covered, static_cast<int>(n) - 1);  // ~4-sigma coverage
}

TEST(MonteCarlo, MemoizationBoundsWorthEvaluations) {
  const auto result =
      monte_carlo_shapley(4, kTwoVmGame, {.permutations = 1000, .seed = 3});
  // At most 2^4 = 16 distinct coalitions can ever be evaluated.
  EXPECT_LE(result.worth_evaluations, 16u);
  EXPECT_EQ(result.permutations_used, 2000u);  // antithetic doubles the walks
}

TEST(MonteCarlo, AntitheticOffHalvesWalks) {
  const auto result = monte_carlo_shapley(
      3, kTwoVmGame, {.permutations = 100, .seed = 3, .antithetic = false});
  EXPECT_EQ(result.permutations_used, 100u);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  util::Rng rng(23);
  std::vector<double> worth(32);
  for (double& w : worth) w = rng.uniform(0.0, 10.0);
  worth[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  const auto a = monte_carlo_shapley(5, v, {.permutations = 37, .seed = 99});
  const auto b = monte_carlo_shapley(5, v, {.permutations = 37, .seed = 99});
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(a.values[i], b.values[i]);
}

TEST(MonteCarlo, Validation) {
  EXPECT_THROW(monte_carlo_shapley(0, kTwoVmGame, {}), std::invalid_argument);
  EXPECT_THROW(monte_carlo_shapley(kMaxPlayers + 1, kTwoVmGame, {}),
               std::invalid_argument);
  EXPECT_THROW(monte_carlo_shapley(2, kTwoVmGame, {.permutations = 0}),
               std::invalid_argument);
}

// Parameterized convergence sweep: mean absolute error decreases with the
// permutation budget across game sizes.
class McConvergence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(McConvergence, MeanAbsoluteErrorWithinBudgetBound) {
  const auto [n, permutations] = GetParam();
  util::Rng rng(n * 31 + permutations);
  std::vector<double> worth(std::size_t{1} << n);
  for (double& w : worth) w = rng.uniform(0.0, 50.0);
  worth[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  const auto exact = shapley_values(n, v);
  const auto mc =
      monte_carlo_shapley(n, v, {.permutations = permutations, .seed = 1234});
  double mae = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    mae += std::abs(mc.values[i] - exact[i]);
  mae /= static_cast<double>(n);
  // Marginals are bounded by ~50; the MC error at B walks is O(50/sqrt(B)).
  const double bound = 6.0 * 50.0 / std::sqrt(static_cast<double>(2 * permutations));
  EXPECT_LT(mae, bound) << "n=" << n << " B=" << permutations;
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, McConvergence,
    ::testing::Combine(::testing::Values<std::size_t>(4, 6, 8, 10),
                       ::testing::Values<std::size_t>(100, 400, 1600)));

}  // namespace
}  // namespace vmp::core
