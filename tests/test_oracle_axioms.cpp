// Property sweep: the simulator's coalition-worth games, at random fleets
// and random states, always admit Shapley allocations satisfying the four
// axioms — i.e. the substrate really produces well-posed cooperative games,
// not just the hand-built examples.
#include <gtest/gtest.h>

#include <numeric>

#include "common/vm_config.hpp"
#include "core/axioms.hpp"
#include "core/shapley.hpp"
#include "sim/coalition_probe.hpp"
#include "util/rng.hpp"

namespace vmp {
namespace {

using common::StateVector;

struct GameFixture {
  std::vector<common::VmConfig> fleet;
  std::vector<StateVector> states;
  sim::MachineSpec spec = sim::xeon_prototype();
};

GameFixture random_game(int seed) {
  util::Rng rng(seed * 2654435761u + 17);
  GameFixture game;
  const auto catalogue = common::paper_vm_catalogue();
  std::size_t vcpus = 0;
  const std::size_t count = 2 + rng.uniform_u64(4);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& config = catalogue[rng.uniform_u64(catalogue.size())];
    if (vcpus + config.vcpus > game.spec.topology.logical_cpus()) break;
    game.fleet.push_back(config);
    vcpus += config.vcpus;
  }
  if (game.fleet.size() < 2) game.fleet.assign(2, catalogue[0]);
  for (std::size_t i = 0; i < game.fleet.size(); ++i) {
    StateVector state = StateVector::cpu_only(rng.uniform());
    state[common::Component::kMemory] = rng.uniform(0.0, 0.6);
    game.states.push_back(state);
  }
  return game;
}

class OracleGameAxioms : public ::testing::TestWithParam<int> {};

TEST_P(OracleGameAxioms, ShapleyOnSimulatedWorthsSatisfiesAllAxioms) {
  const GameFixture game = random_game(GetParam());
  const sim::CoalitionProbe probe(game.spec, game.fleet);
  const std::size_t n = game.fleet.size();
  const core::WorthFn v = [&](core::Coalition s) {
    return probe.worth(s.mask(), game.states);
  };
  const auto phi = core::shapley_values(n, v);
  const core::AxiomReport report = core::evaluate_axioms(n, v, phi, 1e-6);
  EXPECT_TRUE(report.efficiency) << "gap " << report.efficiency_gap;
  EXPECT_TRUE(report.symmetry);
  EXPECT_TRUE(report.dummy);
}

TEST_P(OracleGameAxioms, IdenticalTwinsAreSymmetricPlayers) {
  // Force two identical VMs at identical states into the random game and
  // verify the axiom checker detects them as symmetric in the *worth
  // function* itself (not merely equal payoffs).
  GameFixture game = random_game(GetParam() + 1000);
  game.fleet[0] = game.fleet[1] = common::paper_vm_type(2);
  game.states[0] = game.states[1] = StateVector::cpu_only(0.7);
  const sim::CoalitionProbe probe(game.spec, game.fleet);
  const core::WorthFn v = [&](core::Coalition s) {
    return probe.worth(s.mask(), game.states);
  };
  EXPECT_TRUE(core::players_symmetric(game.fleet.size(), v, 0, 1, 1e-9));
  const auto phi = core::shapley_values(game.fleet.size(), v);
  EXPECT_NEAR(phi[0], phi[1], 1e-9);
}

TEST_P(OracleGameAxioms, ZeroStateVmIsDummy) {
  GameFixture game = random_game(GetParam() + 2000);
  game.states[0] = StateVector::zero();
  const sim::CoalitionProbe probe(game.spec, game.fleet);
  const core::WorthFn v = [&](core::Coalition s) {
    return probe.worth(s.mask(), game.states);
  };
  EXPECT_TRUE(core::player_is_dummy(game.fleet.size(), v, 0, 1e-9));
  const auto phi = core::shapley_values(game.fleet.size(), v);
  EXPECT_NEAR(phi[0], 0.0, 1e-9);
}

TEST_P(OracleGameAxioms, GameIsMonotoneAndSubadditiveInPower) {
  // Structural sanity of the substrate's games: adding a VM never lowers
  // power (monotone), and never adds more than its stand-alone power plus a
  // bounded scheduling externality. The slack is real, not numerical: a
  // joining VM can re-pair existing sibling hyper-threads (the greedy pack
  // order shifts), losing up to one core's worth of SMT overlap saving
  // (gamma x p_t) that the incumbents previously enjoyed.
  const GameFixture game = random_game(GetParam() + 3000);
  const sim::CoalitionProbe probe(game.spec, game.fleet);
  const double repair_slack =
      game.spec.smt_contention * game.spec.thread_full_power_w;
  const std::size_t n = game.fleet.size();
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) continue;
      const double before = probe.worth(mask, game.states);
      const double after = probe.worth(mask | (1u << i), game.states);
      const double alone =
          probe.worth(1u << i, game.states);
      ASSERT_GE(after, before - 1e-9);
      ASSERT_LE(after - before, alone + repair_slack + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleGameAxioms, ::testing::Range(1, 13));

}  // namespace
}  // namespace vmp
