#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "common/vm_config.hpp"
#include "workload/primitives.hpp"

namespace vmp::sim {
namespace {

wl::WorkloadPtr busy(double util = 1.0) {
  return std::make_unique<wl::ConstantWorkload>(
      common::StateVector::cpu_only(util));
}

MachineSpec quiet_xeon() {
  MachineSpec spec = xeon_prototype();
  spec.meter_noise_sigma_w = 0.0;
  spec.meter_quantum_w = 0.0;
  spec.affinity_jitter = 0.0;
  return spec;
}

TEST(Cluster, AddHostsAndIndexStability) {
  Cluster cluster;
  EXPECT_EQ(cluster.add_host(quiet_xeon(), 1), 0u);
  EXPECT_EQ(cluster.add_host(pentium_desktop(), 2), 1u);
  EXPECT_EQ(cluster.host_count(), 2u);
  EXPECT_EQ(cluster.host(1).hypervisor().spec().name, "pentium-desktop");
  EXPECT_THROW(cluster.host(2), std::out_of_range);
}

TEST(Cluster, LaunchWithoutHostsFails) {
  Cluster cluster;
  EXPECT_THROW(cluster.launch(common::demo_c_vm(), busy()),
               std::runtime_error);
}

TEST(Cluster, FirstFitFillsInOrder) {
  Cluster cluster(PlacementPolicy::kFirstFit);
  cluster.add_host(quiet_xeon(), 1);  // 16 logical CPUs
  cluster.add_host(quiet_xeon(), 2);
  const auto big = common::paper_vm_type(4);  // 8 vCPUs
  EXPECT_EQ(cluster.launch(big, busy()).host, 0u);
  EXPECT_EQ(cluster.launch(big, busy()).host, 0u);  // fills host 0 (16/16)
  EXPECT_EQ(cluster.launch(big, busy()).host, 1u);  // spills to host 1
  EXPECT_EQ(cluster.free_vcpus(0), 0u);
  EXPECT_EQ(cluster.free_vcpus(1), 8u);
}

TEST(Cluster, LeastLoadedBalances) {
  Cluster cluster(PlacementPolicy::kLeastLoaded);
  cluster.add_host(quiet_xeon(), 1);
  cluster.add_host(quiet_xeon(), 2);
  const auto vm = common::paper_vm_type(3);  // 4 vCPUs
  EXPECT_EQ(cluster.launch(vm, busy()).host, 0u);
  EXPECT_EQ(cluster.launch(vm, busy()).host, 1u);  // alternates
  EXPECT_EQ(cluster.launch(vm, busy()).host, 0u);
  EXPECT_EQ(cluster.launch(vm, busy()).host, 1u);
}

TEST(Cluster, CapacityExhaustionThrows) {
  Cluster cluster;
  cluster.add_host(quiet_xeon(), 1);
  const auto big = common::paper_vm_type(4);
  (void)cluster.launch(big, busy());
  (void)cluster.launch(big, busy());
  EXPECT_THROW(cluster.launch(common::demo_c_vm(), busy()),
               std::runtime_error);
}

TEST(Cluster, StepAdvancesAllHostsLockStep) {
  Cluster cluster;
  cluster.add_host(quiet_xeon(), 1);
  cluster.add_host(quiet_xeon(), 2);
  (void)cluster.launch(common::demo_c_vm(), busy());
  const auto frames = cluster.step(1.0);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_DOUBLE_EQ(cluster.host(0).now(), 1.0);
  EXPECT_DOUBLE_EQ(cluster.host(1).now(), 1.0);
  // Host 0 carries the busy VM; host 1 idles at its floor.
  EXPECT_GT(frames[0].active_power_w, frames[1].active_power_w);
  EXPECT_NEAR(frames[1].active_power_w, quiet_xeon().idle_power_w, 1e-9);
}

TEST(Cluster, TotalTruePowerSumsHosts) {
  Cluster cluster;
  cluster.add_host(quiet_xeon(), 1);
  cluster.add_host(quiet_xeon(), 2);
  (void)cluster.step(1.0);
  EXPECT_NEAR(cluster.total_true_power_w(), 2.0 * quiet_xeon().idle_power_w,
              1e-9);
}

TEST(Cluster, PolicyNames) {
  EXPECT_STREQ(to_string(PlacementPolicy::kFirstFit), "first-fit");
  EXPECT_STREQ(to_string(PlacementPolicy::kLeastLoaded), "least-loaded");
}

}  // namespace
}  // namespace vmp::sim
