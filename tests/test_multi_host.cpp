#include "core/multi_host.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::core {
namespace {

using common::StateVector;

std::vector<VmSample> host_vms(std::initializer_list<std::uint32_t> ids) {
  std::vector<VmSample> out;
  for (std::uint32_t id : ids)
    out.push_back({id, 0, StateVector::cpu_only(0.5)});
  return out;
}

TEST(MultiHost, BindAndQueryOwnership) {
  MultiHostAccountant acc;
  acc.bind(0, 5, 101);
  EXPECT_TRUE(acc.is_bound(0, 5));
  EXPECT_FALSE(acc.is_bound(1, 5));  // bindings are per host
  EXPECT_EQ(acc.owner_of(0, 5), 101u);
  EXPECT_THROW(acc.owner_of(1, 5), std::out_of_range);
}

TEST(MultiHost, RebindSameTenantIsIdempotent) {
  MultiHostAccountant acc;
  acc.bind(0, 5, 101);
  EXPECT_NO_THROW(acc.bind(0, 5, 101));
  EXPECT_THROW(acc.bind(0, 5, 202), std::invalid_argument);
}

TEST(MultiHost, AdditivityAcrossHosts) {
  // The defining property: tenant total = sum of per-host shares.
  MultiHostAccountant acc;
  acc.bind(0, 1, 101);  // compute VM
  acc.bind(1, 7, 101);  // logical disk on the storage host
  acc.add_host_sample(0, host_vms({1}), std::vector<double>{40.0}, 10.0);
  acc.add_host_sample(1, host_vms({7}), std::vector<double>{25.0}, 10.0);
  EXPECT_DOUBLE_EQ(acc.tenant_energy_on_host_j(101, 0), 400.0);
  EXPECT_DOUBLE_EQ(acc.tenant_energy_on_host_j(101, 1), 250.0);
  EXPECT_DOUBLE_EQ(acc.tenant_energy_j(101), 650.0);
}

TEST(MultiHost, UnboundVmsGoToUnattributedBucket) {
  MultiHostAccountant acc;
  acc.bind(0, 1, 101);
  acc.add_host_sample(0, host_vms({1, 2}), std::vector<double>{10.0, 5.0}, 2.0);
  EXPECT_DOUBLE_EQ(acc.tenant_energy_j(101), 20.0);
  EXPECT_DOUBLE_EQ(acc.unattributed_energy_j(), 10.0);
  EXPECT_DOUBLE_EQ(acc.total_energy_j(), 30.0);
}

TEST(MultiHost, SameVmIdOnDifferentHostsIsDistinct) {
  MultiHostAccountant acc;
  acc.bind(0, 9, 101);
  acc.bind(1, 9, 202);
  acc.add_host_sample(0, host_vms({9}), std::vector<double>{10.0}, 1.0);
  acc.add_host_sample(1, host_vms({9}), std::vector<double>{20.0}, 1.0);
  EXPECT_DOUBLE_EQ(acc.tenant_energy_j(101), 10.0);
  EXPECT_DOUBLE_EQ(acc.tenant_energy_j(202), 20.0);
}

TEST(MultiHost, TenantsListedAscending) {
  MultiHostAccountant acc;
  acc.bind(0, 1, 300);
  acc.bind(0, 2, 100);
  acc.add_host_sample(0, host_vms({1, 2}), std::vector<double>{1.0, 1.0}, 1.0);
  const auto tenants = acc.tenants();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0], 100u);
  EXPECT_EQ(tenants[1], 300u);
}

TEST(MultiHost, UnknownTenantHasZeroEnergy) {
  const MultiHostAccountant acc;
  EXPECT_DOUBLE_EQ(acc.tenant_energy_j(999), 0.0);
  EXPECT_DOUBLE_EQ(acc.tenant_energy_on_host_j(999, 0), 0.0);
}

TEST(MultiHost, Validation) {
  MultiHostAccountant acc;
  const auto vms = host_vms({1});
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(acc.add_host_sample(0, vms, wrong, 1.0), std::invalid_argument);
  const std::vector<double> phi = {1.0};
  EXPECT_THROW(acc.add_host_sample(0, vms, phi, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::core
