#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace vmp::util {
namespace {

TEST(Histogram, ConstructionValidation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.75);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
  EXPECT_THROW(h.bin_lo(4), std::out_of_range);
}

TEST(Histogram, CountsLandInRightBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.35);
  h.add(0.9);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.bin(3), 1u);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(5.0);
  h.add(1.0);  // exactly hi clamps into the last bin
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, CumulativeFractionIsCdf) {
  Histogram h(0.0, 10.0, 5);
  const std::vector<double> xs = {1.0, 3.0, 5.0, 7.0, 9.0};
  h.add_all(xs);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.2);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(2), 0.6);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(4), 1.0);
}

TEST(Histogram, CumulativeFractionEmpty) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.0);
}

TEST(Histogram, RenderContainsEveryBin) {
  Histogram h(0.0, 1.0, 3);
  h.add(0.5);
  const std::string out = h.render();
  // One line per bin, each ending with a cdf annotation.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("cdf="), std::string::npos);
}

}  // namespace
}  // namespace vmp::util
