#include "sim/hypervisor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "common/vm_config.hpp"
#include "workload/primitives.hpp"
#include "workload/synthetic.hpp"

namespace vmp::sim {
namespace {

MachineSpec quiet_xeon() {
  MachineSpec spec = xeon_prototype();
  spec.affinity_jitter = 0.0;
  return spec;
}

wl::WorkloadPtr constant_cpu(double util) {
  return std::make_unique<wl::ConstantWorkload>(
      common::StateVector::cpu_only(util));
}

TEST(Hypervisor, StartsIdleAtIdlePower) {
  Hypervisor hv(quiet_xeon());
  EXPECT_DOUBLE_EQ(hv.current_power().total(), hv.spec().idle_power_w);
  EXPECT_EQ(hv.vm_count(), 0u);
  EXPECT_DOUBLE_EQ(hv.now(), 0.0);
}

TEST(Hypervisor, CreateAssignsDenseIds) {
  Hypervisor hv(quiet_xeon());
  EXPECT_EQ(hv.create_vm(common::demo_c_vm(), constant_cpu(0.5)), 0u);
  EXPECT_EQ(hv.create_vm(common::demo_c_vm(), constant_cpu(0.5)), 1u);
  EXPECT_EQ(hv.vm_count(), 2u);
  EXPECT_EQ(hv.vm(0).state(), VmState::kStopped);
  EXPECT_THROW(hv.vm(9), std::out_of_range);
}

TEST(Hypervisor, StoppedVmAddsNoPowerDummyAxiom) {
  Hypervisor hv(quiet_xeon());
  const VmId id = hv.create_vm(common::demo_c_vm(), constant_cpu(1.0));
  hv.tick(1.0);
  EXPECT_DOUBLE_EQ(hv.current_power().adjusted(), 0.0);
  // An idle (stopped) VM contributes nothing — the paper's Remark 1.
  (void)id;
  EXPECT_TRUE(hv.observations().empty());
}

TEST(Hypervisor, StartRaisesPowerStopRestoresIt) {
  Hypervisor hv(quiet_xeon());
  const VmId id = hv.create_vm(common::demo_c_vm(), constant_cpu(1.0));
  hv.start_vm(id);
  hv.tick(1.0);
  const double active = hv.current_power().adjusted();
  EXPECT_GT(active, 10.0);
  hv.stop_vm(id);
  hv.tick(1.0);
  EXPECT_DOUBLE_EQ(hv.current_power().adjusted(), 0.0);
}

TEST(Hypervisor, NoOvercommit) {
  Hypervisor hv(quiet_xeon());  // 16 logical CPUs
  const auto big = common::paper_vm_type(4);  // 8 vCPUs
  const VmId a = hv.create_vm(big, constant_cpu(0.5));
  const VmId b = hv.create_vm(big, constant_cpu(0.5));
  const VmId c = hv.create_vm(common::demo_c_vm(), constant_cpu(0.5));
  hv.start_vm(a);
  hv.start_vm(b);
  EXPECT_EQ(hv.running_vcpus(), 16u);
  EXPECT_THROW(hv.start_vm(c), std::runtime_error);
  hv.stop_vm(a);
  EXPECT_NO_THROW(hv.start_vm(c));
}

TEST(Hypervisor, StartIsIdempotent) {
  Hypervisor hv(quiet_xeon());
  const VmId id = hv.create_vm(common::demo_c_vm(), constant_cpu(0.5));
  hv.start_vm(id);
  hv.start_vm(id);  // no-op, must not double-count vCPUs
  EXPECT_EQ(hv.running_vcpus(), 1u);
}

TEST(Hypervisor, TickAdvancesClockAndStates) {
  Hypervisor hv(quiet_xeon());
  const VmId id = hv.create_vm(
      common::demo_c_vm(),
      std::make_unique<wl::RampWorkload>(0.0, 1.0, 10.0));
  hv.start_vm(id);
  hv.tick(5.0);
  EXPECT_DOUBLE_EQ(hv.now(), 5.0);
  EXPECT_NEAR(hv.vm(id).observed_state().cpu(), 0.5, 1e-12);
  EXPECT_THROW(hv.tick(0.0), std::invalid_argument);
  EXPECT_THROW(hv.tick(-1.0), std::invalid_argument);
}

TEST(Hypervisor, WorkloadTimeIsRelativeToStart) {
  Hypervisor hv(quiet_xeon());
  const VmId id = hv.create_vm(
      common::demo_c_vm(), std::make_unique<wl::RampWorkload>(0.0, 1.0, 10.0));
  hv.tick(100.0);  // VM still stopped; its workload clock must not run
  hv.start_vm(id);
  hv.tick(5.0);
  EXPECT_NEAR(hv.vm(id).observed_state().cpu(), 0.5, 1e-12);
}

TEST(Hypervisor, ObservationsCoverRunningVmsInIdOrder) {
  Hypervisor hv(quiet_xeon());
  const VmId a = hv.create_vm(common::demo_c_vm(), constant_cpu(0.25));
  const VmId b = hv.create_vm(common::paper_vm_type(2), constant_cpu(0.75));
  hv.start_vm(a);
  hv.start_vm(b);
  hv.tick(1.0);
  const auto obs = hv.observations();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].id, a);
  EXPECT_DOUBLE_EQ(obs[0].state.cpu(), 0.25);
  EXPECT_EQ(obs[1].id, b);
  EXPECT_EQ(obs[1].type_id, common::paper_vm_type(2).type_id);
}

TEST(Hypervisor, BindWorkloadTakesEffect) {
  Hypervisor hv(quiet_xeon());
  const VmId id = hv.create_vm(common::demo_c_vm(), constant_cpu(0.2));
  hv.start_vm(id);
  hv.tick(1.0);
  EXPECT_DOUBLE_EQ(hv.vm(id).observed_state().cpu(), 0.2);
  hv.bind_workload(id, constant_cpu(0.9));
  EXPECT_DOUBLE_EQ(hv.vm(id).observed_state().cpu(), 0.9);
  EXPECT_THROW(hv.bind_workload(42, constant_cpu(0.1)), std::out_of_range);
}

TEST(Hypervisor, PackFractionStaysInUnitInterval) {
  MachineSpec spec = xeon_prototype();
  spec.affinity_jitter = 0.5;  // large jitter to stress the clamp
  Hypervisor hv(spec, /*seed=*/3);
  const VmId id = hv.create_vm(common::demo_c_vm(), constant_cpu(1.0));
  hv.start_vm(id);
  for (int i = 0; i < 200; ++i) {
    hv.tick(1.0);
    ASSERT_GE(hv.current_pack_fraction(), 0.0);
    ASSERT_LE(hv.current_pack_fraction(), 1.0);
  }
}

TEST(Hypervisor, PowerFluctuatesAroundExpectedValue) {
  Hypervisor hv(quiet_xeon());  // jitter 0 => power deterministic
  const VmId a = hv.create_vm(common::demo_c_vm(), constant_cpu(1.0));
  const VmId b = hv.create_vm(common::demo_c_vm(), constant_cpu(1.0));
  hv.start_vm(a);
  hv.start_vm(b);
  hv.tick(1.0);
  const double p1 = hv.current_power().adjusted();
  hv.tick(1.0);
  EXPECT_DOUBLE_EQ(hv.current_power().adjusted(), p1);
}

TEST(Hypervisor, CreateRejectsNullWorkload) {
  Hypervisor hv(quiet_xeon());
  EXPECT_THROW(hv.create_vm(common::demo_c_vm(), nullptr),
               std::invalid_argument);
}

TEST(Vm, StateNames) {
  EXPECT_STREQ(to_string(VmState::kRunning), "running");
  EXPECT_STREQ(to_string(VmState::kStopped), "stopped");
}

}  // namespace
}  // namespace vmp::sim
