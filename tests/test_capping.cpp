#include "core/capping.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::core {
namespace {

using common::StateVector;

std::vector<VmSample> one_vm(std::uint32_t id = 1) {
  return {{id, 0, StateVector::cpu_only(1.0)}};
}

TEST(CapPolicy, Validation) {
  CapPolicy ok{.cap_w = 50.0};
  EXPECT_NO_THROW(ok.validate());
  CapPolicy bad = ok;
  bad.cap_w = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.decrease_factor = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.increase_step = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.comfort_margin = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.min_throttle = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(PowerCapController, UncappedVmIsUntouched) {
  PowerCapController controller;
  EXPECT_FALSE(controller.has_cap(1));
  EXPECT_DOUBLE_EQ(controller.throttle(1), 1.0);
  controller.observe(one_vm(1), std::vector<double>{1000.0});
  EXPECT_DOUBLE_EQ(controller.throttle(1), 1.0);
  EXPECT_EQ(controller.violations(1), 0u);
}

TEST(PowerCapController, ViolationTriggersMultiplicativeDecrease) {
  PowerCapController controller;
  controller.set_cap(1, CapPolicy{.cap_w = 50.0, .decrease_factor = 0.8});
  controller.observe(one_vm(1), std::vector<double>{60.0});
  EXPECT_DOUBLE_EQ(controller.throttle(1), 0.8);
  controller.observe(one_vm(1), std::vector<double>{60.0});
  EXPECT_DOUBLE_EQ(controller.throttle(1), 0.64);
  EXPECT_EQ(controller.violations(1), 2u);
}

TEST(PowerCapController, ThrottleNeverBelowFloor) {
  PowerCapController controller;
  controller.set_cap(1, CapPolicy{.cap_w = 10.0, .decrease_factor = 0.5,
                                  .min_throttle = 0.2});
  for (int i = 0; i < 20; ++i)
    controller.observe(one_vm(1), std::vector<double>{100.0});
  EXPECT_DOUBLE_EQ(controller.throttle(1), 0.2);
}

TEST(PowerCapController, AdditiveRecoveryWhenComfortablyUnder) {
  PowerCapController controller;
  controller.set_cap(1, CapPolicy{.cap_w = 50.0, .decrease_factor = 0.5,
                                  .increase_step = 0.05,
                                  .comfort_margin = 0.1});
  controller.observe(one_vm(1), std::vector<double>{60.0});  // -> 0.5
  controller.observe(one_vm(1), std::vector<double>{30.0});  // under 45 -> +0.05
  EXPECT_DOUBLE_EQ(controller.throttle(1), 0.55);
  // In the dead band (between 45 and 50): hold.
  controller.observe(one_vm(1), std::vector<double>{47.0});
  EXPECT_DOUBLE_EQ(controller.throttle(1), 0.55);
}

TEST(PowerCapController, ThrottleCappedAtOne) {
  PowerCapController controller;
  controller.set_cap(1, CapPolicy{.cap_w = 50.0, .increase_step = 0.5});
  for (int i = 0; i < 10; ++i)
    controller.observe(one_vm(1), std::vector<double>{1.0});
  EXPECT_DOUBLE_EQ(controller.throttle(1), 1.0);
}

TEST(PowerCapController, MultipleVmsIndependent) {
  PowerCapController controller;
  controller.set_cap(1, CapPolicy{.cap_w = 50.0});
  controller.set_cap(2, CapPolicy{.cap_w = 50.0});
  const std::vector<VmSample> vms = {{1, 0, StateVector::cpu_only(1.0)},
                                     {2, 0, StateVector::cpu_only(1.0)}};
  controller.observe(vms, std::vector<double>{60.0, 10.0});
  EXPECT_LT(controller.throttle(1), 1.0);
  EXPECT_DOUBLE_EQ(controller.throttle(2), 1.0);
}

TEST(PowerCapController, DuplicateCapRejected) {
  PowerCapController controller;
  controller.set_cap(1, CapPolicy{.cap_w = 50.0});
  EXPECT_THROW(controller.set_cap(1, CapPolicy{.cap_w = 60.0}),
               std::invalid_argument);
}

TEST(PowerCapController, ObserveValidation) {
  PowerCapController controller;
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(controller.observe(one_vm(1), wrong), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::core
