#include "workload/patterns.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::wl {
namespace {

TEST(OnOffWorkload, SquareWaveShape) {
  OnOffWorkload w(0.9, 10.0, 5.0, 0.1);
  EXPECT_DOUBLE_EQ(w.demand(0.0).cpu(), 0.9);
  EXPECT_DOUBLE_EQ(w.demand(9.9).cpu(), 0.9);
  EXPECT_DOUBLE_EQ(w.demand(10.0).cpu(), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(14.9).cpu(), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(15.0).cpu(), 0.9);  // next period
  EXPECT_DOUBLE_EQ(w.demand(-1.0).cpu(), 0.9);  // clamps to start
}

TEST(OnOffWorkload, DutyCycleAverage) {
  OnOffWorkload w(1.0, 30.0, 10.0);
  double sum = 0.0;
  for (double t = 0.0; t < 400.0; t += 1.0) sum += w.demand(t).cpu();
  EXPECT_NEAR(sum / 400.0, 0.75, 0.02);
}

TEST(OnOffWorkload, Validation) {
  EXPECT_THROW(OnOffWorkload(1.5, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(OnOffWorkload(0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(OnOffWorkload(0.5, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(OnOffWorkload(0.5, 1.0, 1.0, -0.1), std::invalid_argument);
  EXPECT_THROW(OnOffWorkload(0.5, 1.0, 1.0, 0.0, 0.0), std::invalid_argument);
}

TEST(PoissonBurstWorkload, MeanLoadMatchesOfferedLoad) {
  // 5 req/s at 0.1 CPU each -> mean utilization ~0.5 (clamped tail shaves a
  // little).
  PoissonBurstWorkload w(5.0, 0.1, /*seed=*/7);
  double sum = 0.0;
  const int seconds = 5000;
  for (int t = 0; t < seconds; ++t) sum += w.demand(t).cpu();
  EXPECT_NEAR(sum / seconds, 0.49, 0.03);
}

TEST(PoissonBurstWorkload, IsBursty) {
  PoissonBurstWorkload w(3.0, 0.15, /*seed=*/9);
  double lo = 1.0, hi = 0.0;
  for (int t = 0; t < 500; ++t) {
    const double u = w.demand(t).cpu();
    ASSERT_GE(u, 0.0);
    ASSERT_LE(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_DOUBLE_EQ(lo, 0.0);  // some quiet seconds
  EXPECT_GT(hi, 0.7);         // some bursts
}

TEST(PoissonBurstWorkload, StableWithinASecond) {
  PoissonBurstWorkload w(5.0, 0.1, /*seed=*/11);
  const double u = w.demand(42.0).cpu();
  EXPECT_DOUBLE_EQ(w.demand(42.7).cpu(), u);
}

TEST(PoissonBurstWorkload, Validation) {
  EXPECT_THROW(PoissonBurstWorkload(0.0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(PoissonBurstWorkload(1.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(PoissonBurstWorkload(1.0, 0.1, 1, 0.0), std::invalid_argument);
}

TEST(DiurnalWorkload, TroughAtMidnightCrestAtNoon) {
  DiurnalWorkload w(0.2, 0.9, 1000.0, /*seed=*/3);
  double midnight = 0.0, noon = 0.0;
  for (int k = 0; k < 20; ++k) {
    midnight += w.demand(0.0 + k * 1000.0).cpu();
    noon += w.demand(500.0 + k * 1000.0).cpu();
  }
  EXPECT_NEAR(midnight / 20.0, 0.2, 0.05);
  EXPECT_NEAR(noon / 20.0, 0.9, 0.05);
}

TEST(DiurnalWorkload, AlwaysNormalized) {
  DiurnalWorkload w(0.0, 1.0, 100.0, /*seed=*/5);
  for (double t = 0.0; t < 300.0; t += 1.0)
    ASSERT_TRUE(w.demand(t).is_normalized()) << t;
}

TEST(DiurnalWorkload, Validation) {
  EXPECT_THROW(DiurnalWorkload(0.9, 0.2, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(DiurnalWorkload(-0.1, 0.5, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(DiurnalWorkload(0.2, 1.1, 100.0, 1), std::invalid_argument);
  EXPECT_THROW(DiurnalWorkload(0.2, 0.9, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(DiurnalWorkload(0.2, 0.9, 100.0, 1, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmp::wl
