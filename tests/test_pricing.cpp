#include "core/pricing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::core {
namespace {

TEST(Pricing, YearlyCostArithmetic) {
  // 115 W at $0.10/kWh over 8760 h: the paper's $100.74.
  EXPECT_NEAR(yearly_electricity_cost_usd(115.0, 0.10), 100.74, 0.01);
  EXPECT_DOUBLE_EQ(yearly_electricity_cost_usd(0.0, 0.10), 0.0);
  EXPECT_THROW(yearly_electricity_cost_usd(-1.0, 0.10), std::invalid_argument);
  EXPECT_THROW(yearly_electricity_cost_usd(1.0, -0.10), std::invalid_argument);
}

TEST(Pricing, TableIRowsMatchPaper) {
  const auto table = aws_instance_cost_table();
  ASSERT_EQ(table.size(), 4u);

  // Row 1: General Purpose — $100.74 USA / $193.52 Germany.
  EXPECT_EQ(table[0].instance_type, "General Purpose");
  EXPECT_NEAR(table[0].electricity_usa, 100.74, 0.05);
  EXPECT_NEAR(table[0].electricity_germany, 193.52, 1.0);
  EXPECT_DOUBLE_EQ(table[0].cpu_cost, 310.4);
  EXPECT_DOUBLE_EQ(table[0].ram_cost, 80.0);

  // Row 2: Compute Optimized — $105.15 / $201.94.
  EXPECT_NEAR(table[1].electricity_usa, 105.15, 0.05);
  EXPECT_NEAR(table[1].electricity_germany, 201.94, 1.1);
  EXPECT_DOUBLE_EQ(table[1].cpu_cost, 349.0);

  // Rows 3/4 share the General Purpose electricity but differ in hardware.
  EXPECT_NEAR(table[2].electricity_usa, table[0].electricity_usa, 1e-9);
  EXPECT_DOUBLE_EQ(table[2].ram_cost, 160.0);
  EXPECT_DOUBLE_EQ(table[3].ssd_cost, 256.0);
}

TEST(Pricing, ElectricityIsChasingHardwareCost) {
  // The motivating claim of Table I: yearly electricity in Germany is the
  // same order as the amortized yearly CPU cost (310.4 / 5-year cycle a year
  // would be ~62; the paper amortizes differently, but electricity must be a
  // significant fraction of the CPU cost).
  for (const auto& row : aws_instance_cost_table()) {
    EXPECT_GT(row.electricity_germany, 0.5 * row.ram_cost);
    EXPECT_GT(row.electricity_usa / row.cpu_cost, 0.25);
  }
}

TEST(Pricing, GermanyTariffRoughlyDoubleUs) {
  EXPECT_NEAR(kGermanyTariffUsdPerKwh / kUsTariffUsdPerKwh, 1.92, 0.02);
}

}  // namespace
}  // namespace vmp::core
