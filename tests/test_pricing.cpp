#include "core/pricing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::core {
namespace {

TEST(Pricing, YearlyCostArithmetic) {
  // 115 W at $0.10/kWh over 8760 h: the paper's $100.74.
  EXPECT_NEAR(yearly_electricity_cost_usd(115.0, 0.10), 100.74, 0.01);
  EXPECT_DOUBLE_EQ(yearly_electricity_cost_usd(0.0, 0.10), 0.0);
  EXPECT_THROW(yearly_electricity_cost_usd(-1.0, 0.10), std::invalid_argument);
  EXPECT_THROW(yearly_electricity_cost_usd(1.0, -0.10), std::invalid_argument);
}

TEST(Pricing, TableIRowsMatchPaper) {
  const auto table = aws_instance_cost_table();
  ASSERT_EQ(table.size(), 4u);

  // Row 1: General Purpose — $100.74 USA / $193.52 Germany.
  EXPECT_EQ(table[0].instance_type, "General Purpose");
  EXPECT_NEAR(table[0].electricity_usa, 100.74, 0.05);
  EXPECT_NEAR(table[0].electricity_germany, 193.52, 1.0);
  EXPECT_DOUBLE_EQ(table[0].cpu_cost, 310.4);
  EXPECT_DOUBLE_EQ(table[0].ram_cost, 80.0);

  // Row 2: Compute Optimized — $105.15 / $201.94.
  EXPECT_NEAR(table[1].electricity_usa, 105.15, 0.05);
  EXPECT_NEAR(table[1].electricity_germany, 201.94, 1.1);
  EXPECT_DOUBLE_EQ(table[1].cpu_cost, 349.0);

  // Rows 3/4 share the General Purpose electricity but differ in hardware.
  EXPECT_NEAR(table[2].electricity_usa, table[0].electricity_usa, 1e-9);
  EXPECT_DOUBLE_EQ(table[2].ram_cost, 160.0);
  EXPECT_DOUBLE_EQ(table[3].ssd_cost, 256.0);
}

TEST(Pricing, ElectricityIsChasingHardwareCost) {
  // The motivating claim of Table I: yearly electricity in Germany is the
  // same order as the amortized yearly CPU cost (310.4 / 5-year cycle a year
  // would be ~62; the paper amortizes differently, but electricity must be a
  // significant fraction of the CPU cost).
  for (const auto& row : aws_instance_cost_table()) {
    EXPECT_GT(row.electricity_germany, 0.5 * row.ram_cost);
    EXPECT_GT(row.electricity_usa / row.cpu_cost, 0.25);
  }
}

TEST(Pricing, GermanyTariffRoughlyDoubleUs) {
  EXPECT_NEAR(kGermanyTariffUsdPerKwh / kUsTariffUsdPerKwh, 1.92, 0.02);
}

TEST(Pricing, TouRateAtRespectsPeakWindow) {
  TouRateSchedule tou;
  tou.offpeak_usd_per_kwh = 0.10;
  tou.peak_usd_per_kwh = 0.25;
  tou.peak_start_hour = 17.0;
  tou.peak_end_hour = 21.0;
  tou.seconds_per_hour = 10.0;  // compressed day: 240 s.
  EXPECT_DOUBLE_EQ(tou.rate_at(0.0), 0.10);
  EXPECT_DOUBLE_EQ(tou.rate_at(170.0), 0.25);   // 17:00 inclusive.
  EXPECT_DOUBLE_EQ(tou.rate_at(209.99), 0.25);
  EXPECT_DOUBLE_EQ(tou.rate_at(210.0), 0.10);   // 21:00 exclusive.
  EXPECT_DOUBLE_EQ(tou.rate_at(240.0 + 180.0), 0.25);  // next day's peak.
  EXPECT_FALSE(tou.is_flat());
}

TEST(Pricing, TouWrapMidnightPeak) {
  TouRateSchedule tou;
  tou.offpeak_usd_per_kwh = 0.10;
  tou.peak_usd_per_kwh = 0.30;
  tou.peak_start_hour = 22.0;
  tou.peak_end_hour = 2.0;  // wraps midnight.
  tou.seconds_per_hour = 1.0;
  EXPECT_DOUBLE_EQ(tou.rate_at(23.0), 0.30);
  EXPECT_DOUBLE_EQ(tou.rate_at(1.0), 0.30);
  EXPECT_DOUBLE_EQ(tou.rate_at(2.0), 0.10);
  EXPECT_DOUBLE_EQ(tou.rate_at(12.0), 0.10);
}

TEST(Pricing, TouSegmentsCoverWindowAndAlternate) {
  TouRateSchedule tou;
  tou.offpeak_usd_per_kwh = 0.10;
  tou.peak_usd_per_kwh = 0.25;
  tou.seconds_per_hour = 10.0;  // peak is [170, 210) each 240 s day.
  const auto segments = tou_segments(tou, 100.0, 500.0);
  // off [100,170) peak [170,210) off [210,410) peak [410,450) off [450,500).
  ASSERT_EQ(segments.size(), 5u);
  EXPECT_DOUBLE_EQ(segments[0].t0, 100.0);
  EXPECT_DOUBLE_EQ(segments[0].t1, 170.0);
  EXPECT_DOUBLE_EQ(segments[0].usd_per_kwh, 0.10);
  EXPECT_DOUBLE_EQ(segments[1].t1, 210.0);
  EXPECT_DOUBLE_EQ(segments[1].usd_per_kwh, 0.25);
  EXPECT_DOUBLE_EQ(segments[2].t1, 410.0);
  EXPECT_DOUBLE_EQ(segments[2].usd_per_kwh, 0.10);
  EXPECT_DOUBLE_EQ(segments[3].t1, 450.0);
  EXPECT_DOUBLE_EQ(segments[3].usd_per_kwh, 0.25);
  EXPECT_DOUBLE_EQ(segments[4].t1, 500.0);
  EXPECT_DOUBLE_EQ(segments[4].usd_per_kwh, 0.10);
  // Segments tile the window with no gaps.
  for (std::size_t i = 1; i < segments.size(); ++i)
    EXPECT_DOUBLE_EQ(segments[i].t0, segments[i - 1].t1);
}

TEST(Pricing, TouFlatScheduleIsOneSegment) {
  TouRateSchedule flat;  // defaults: both rates at the US tariff.
  EXPECT_TRUE(flat.is_flat());
  const auto segments = tou_segments(flat, 0.0, 1e6);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_DOUBLE_EQ(segments[0].usd_per_kwh, kUsTariffUsdPerKwh);
}

TEST(Pricing, TouCostMatchesHandComputation) {
  TouRateSchedule tou;
  tou.offpeak_usd_per_kwh = 0.10;
  tou.peak_usd_per_kwh = 0.25;
  tou.seconds_per_hour = 10.0;
  // 3.6e6 J at constant power over [160, 220): 60 s total, of which
  // [170, 210) = 40 s are peak. 1 kWh total => (20/60)*0.10 + (40/60)*0.25.
  const double cost = tou_cost_usd(tou, 160.0, 220.0, 3.6e6);
  EXPECT_NEAR(cost, (20.0 / 60.0) * 0.10 + (40.0 / 60.0) * 0.25, 1e-12);
  // Fully off-peak window bills at the off-peak rate.
  EXPECT_NEAR(tou_cost_usd(tou, 0.0, 100.0, 3.6e6), 0.10, 1e-12);
  // Zero-length window: billed at the instantaneous rate.
  EXPECT_NEAR(tou_cost_usd(tou, 180.0, 180.0, 3.6e6), 0.25, 1e-12);
}

TEST(Pricing, TouValidationRejectsBadSchedules) {
  TouRateSchedule bad;
  bad.offpeak_usd_per_kwh = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = TouRateSchedule{};
  bad.peak_start_hour = 24.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = TouRateSchedule{};
  bad.seconds_per_hour = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = TouRateSchedule{};
  bad.peak_end_hour = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_THROW(tou_segments(TouRateSchedule{}, 10.0, 5.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmp::core
