#include "common/vm_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/units.hpp"

namespace vmp::common {
namespace {

TEST(VmConfig, PaperCatalogueMatchesTableIV) {
  const auto catalogue = paper_vm_catalogue();
  ASSERT_EQ(catalogue.size(), 4u);
  EXPECT_EQ(catalogue[0].type_name, "VM1");
  EXPECT_EQ(catalogue[0].vcpus, 1u);
  EXPECT_EQ(catalogue[0].memory_mb, 2048u);
  EXPECT_EQ(catalogue[1].vcpus, 2u);
  EXPECT_EQ(catalogue[2].vcpus, 4u);
  EXPECT_EQ(catalogue[3].vcpus, 8u);
  EXPECT_EQ(catalogue[3].memory_mb, 14336u);
  EXPECT_EQ(catalogue[3].disk_gb, 100u);
}

TEST(VmConfig, TypeIdsAreDistinct) {
  const auto catalogue = paper_vm_catalogue();
  for (std::size_t i = 0; i < catalogue.size(); ++i)
    for (std::size_t j = i + 1; j < catalogue.size(); ++j)
      EXPECT_NE(catalogue[i].type_id, catalogue[j].type_id);
}

TEST(VmConfig, PaperVmTypeIsOneBased) {
  EXPECT_EQ(paper_vm_type(1).type_name, "VM1");
  EXPECT_EQ(paper_vm_type(4).type_name, "VM4");
  EXPECT_THROW(paper_vm_type(0), std::out_of_range);
  EXPECT_THROW(paper_vm_type(5), std::out_of_range);
}

TEST(VmConfig, DemoCVmMatchesSecIII) {
  const VmConfig c = demo_c_vm();
  EXPECT_EQ(c.vcpus, 1u);
  EXPECT_EQ(c.memory_mb, 512u);
  EXPECT_EQ(c.disk_gb, 8u);
}

TEST(VmConfig, ValidationRejectsDegenerateShapes) {
  VmConfig bad = demo_c_vm();
  bad.vcpus = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = demo_c_vm();
  bad.memory_mb = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(demo_c_vm().validate());
}

TEST(Units, JoulesToKwh) {
  EXPECT_DOUBLE_EQ(joules_to_kwh(3.6e6), 1.0);
  EXPECT_DOUBLE_EQ(joules_to_kwh(0.0), 0.0);
}

TEST(Units, WattsToKwh) {
  // 1000 W for one hour = 1 kWh.
  EXPECT_DOUBLE_EQ(watts_to_kwh(1000.0, 3600.0), 1.0);
}

TEST(Units, YearlyKwh) {
  // The Table I arithmetic: 115 W year-round = 1007.4 kWh.
  EXPECT_NEAR(yearly_kwh(115.0), 1007.4, 1e-9);
}

}  // namespace
}  // namespace vmp::common
