#include "sim/coalition_probe.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/vm_config.hpp"

namespace vmp::sim {
namespace {

using common::StateVector;

MachineSpec quiet_xeon() {
  MachineSpec spec = xeon_prototype();
  spec.affinity_jitter = 0.0;
  return spec;
}

std::vector<StateVector> full_load(std::size_t n) {
  return std::vector<StateVector>(n, StateVector::cpu_only(1.0));
}

TEST(CoalitionProbe, EmptyCoalitionHasZeroWorth) {
  const CoalitionProbe probe(quiet_xeon(), {common::demo_c_vm()});
  EXPECT_DOUBLE_EQ(probe.worth(0, full_load(1)), 0.0);
}

TEST(CoalitionProbe, WorthIsIdleAdjusted) {
  const CoalitionProbe probe(quiet_xeon(), {common::demo_c_vm()});
  const auto b = probe.breakdown(0b1, full_load(1));
  EXPECT_DOUBLE_EQ(probe.worth(0b1, full_load(1)), b.adjusted());
  EXPECT_DOUBLE_EQ(b.total() - b.adjusted(), quiet_xeon().idle_power_w);
}

TEST(CoalitionProbe, ReproducesThePaperTwoVmGame) {
  // With full sibling packing: v({1}) = 13.15, v({1,2}) ~= 20.2 (Fig. 6).
  MachineSpec spec = quiet_xeon();
  spec.pack_affinity = 1.0;
  spec.llc_contention_w = 0.0;
  const CoalitionProbe probe(spec, {common::demo_c_vm(), common::demo_c_vm()});
  const auto states = full_load(2);
  EXPECT_NEAR(probe.worth(0b01, states), 13.15, 1e-9);
  EXPECT_NEAR(probe.worth(0b10, states), 13.15, 1e-9);
  EXPECT_NEAR(probe.worth(0b11, states),
              13.15 * (2.0 - spec.smt_contention), 1e-9);
}

TEST(CoalitionProbe, WorthIsMonotoneInCoalition) {
  const CoalitionProbe probe(
      quiet_xeon(),
      {common::demo_c_vm(), common::demo_c_vm(), common::paper_vm_type(2)});
  const auto states = full_load(3);
  for (CoalitionMask mask = 0; mask < 8; ++mask) {
    for (int i = 0; i < 3; ++i) {
      if (mask & (1u << i)) continue;
      const CoalitionMask with_i = mask | (1u << i);
      EXPECT_GE(probe.worth(with_i, states), probe.worth(mask, states) - 1e-9)
          << "mask=" << mask << " i=" << i;
    }
  }
}

TEST(CoalitionProbe, SubAdditiveUnderContention) {
  MachineSpec spec = quiet_xeon();
  spec.pack_affinity = 1.0;
  const CoalitionProbe probe(spec, {common::demo_c_vm(), common::demo_c_vm()});
  const auto states = full_load(2);
  EXPECT_LT(probe.worth(0b11, states),
            probe.worth(0b01, states) + probe.worth(0b10, states));
}

TEST(CoalitionProbe, StatesOutsideMaskIgnored) {
  const CoalitionProbe probe(quiet_xeon(),
                             {common::demo_c_vm(), common::demo_c_vm()});
  std::vector<StateVector> a = {StateVector::cpu_only(0.5),
                                StateVector::cpu_only(0.9)};
  std::vector<StateVector> b = {StateVector::cpu_only(0.5),
                                StateVector::cpu_only(0.1)};
  EXPECT_DOUBLE_EQ(probe.worth(0b01, a), probe.worth(0b01, b));
}

TEST(CoalitionProbe, IntensityScalesWorth) {
  const std::vector<common::VmConfig> fleet = {common::demo_c_vm()};
  const CoalitionProbe unit(quiet_xeon(), fleet, {1.0});
  const CoalitionProbe hot(quiet_xeon(), fleet, {1.1});
  const auto states = full_load(1);
  EXPECT_NEAR(hot.worth(0b1, states), 1.1 * unit.worth(0b1, states), 1e-9);
}

TEST(CoalitionProbe, StatesClampedToValidRange) {
  const CoalitionProbe probe(quiet_xeon(), {common::demo_c_vm()});
  const std::vector<StateVector> over = {StateVector::cpu_only(2.0)};
  EXPECT_DOUBLE_EQ(probe.worth(0b1, over), probe.worth(0b1, full_load(1)));
}

TEST(CoalitionProbe, Validation) {
  const MachineSpec spec = quiet_xeon();
  EXPECT_THROW(CoalitionProbe(spec, {}), std::invalid_argument);
  EXPECT_THROW(
      CoalitionProbe(spec, {common::demo_c_vm()}, {1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(CoalitionProbe(spec, {common::demo_c_vm()}, {0.0}),
               std::invalid_argument);
  // Fleet exceeding logical CPUs (3 x 8 vCPU on 16 logical).
  EXPECT_THROW(CoalitionProbe(spec,
                              {common::paper_vm_type(4), common::paper_vm_type(4),
                               common::paper_vm_type(4)}),
               std::invalid_argument);

  const CoalitionProbe probe(spec, {common::demo_c_vm()});
  EXPECT_THROW(probe.worth(0b1, full_load(2)), std::invalid_argument);
  EXPECT_THROW(probe.worth(0b10, full_load(1)), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::sim
