#include "sim/power_meter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace vmp::sim {
namespace {

TEST(PowerMeter, NoiselessMeterIsExactUpToQuantum) {
  PowerMeter meter(0.0, 0.1, /*seed=*/1);
  EXPECT_DOUBLE_EQ(meter.read(150.04), 150.0);
  EXPECT_DOUBLE_EQ(meter.read(150.06), 150.1);
}

TEST(PowerMeter, ZeroQuantumPassesValueThrough) {
  PowerMeter meter(0.0, 0.0, 1);
  EXPECT_DOUBLE_EQ(meter.read(151.2345), 151.2345);
}

TEST(PowerMeter, NoiseIsUnbiasedWithRequestedSigma) {
  PowerMeter meter(0.5, 0.0, /*seed=*/2);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(meter.read(100.0));
  EXPECT_NEAR(stats.mean(), 100.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 0.5, 0.02);
}

TEST(PowerMeter, NeverReadsNegative) {
  PowerMeter meter(10.0, 0.0, /*seed=*/3);
  for (int i = 0; i < 1000; ++i) ASSERT_GE(meter.read(0.5), 0.0);
}

TEST(PowerMeter, Validation) {
  EXPECT_THROW(PowerMeter(-0.1, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(PowerMeter(0.0, -0.1, 1), std::invalid_argument);
}

TEST(SerialMeterPort, FrameFieldsConsistent) {
  SerialMeterPort port(PowerMeter(0.0, 0.0, 1), 230.0);
  const MeterFrame frame = port.read_frame(230.0, 1.0);
  EXPECT_DOUBLE_EQ(frame.active_power_w, 230.0);
  EXPECT_DOUBLE_EQ(frame.voltage_v, 230.0);
  EXPECT_DOUBLE_EQ(frame.current_a, 1.0);
}

TEST(SerialMeterPort, EnergyAccumulates) {
  SerialMeterPort port(PowerMeter(0.0, 0.0, 1));
  // 3600 W for 1 s = 1 Wh.
  (void)port.read_frame(3600.0, 1.0);
  EXPECT_NEAR(port.total_energy_wh(), 1.0, 1e-12);
  (void)port.read_frame(3600.0, 1.0);
  EXPECT_NEAR(port.total_energy_wh(), 2.0, 1e-12);
}

TEST(SerialMeterPort, Validation) {
  EXPECT_THROW(SerialMeterPort(PowerMeter(0.0, 0.0, 1), 0.0),
               std::invalid_argument);
  SerialMeterPort port(PowerMeter(0.0, 0.0, 1));
  EXPECT_THROW(port.read_frame(100.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::sim
