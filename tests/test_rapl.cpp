#include "sim/rapl.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/msr.hpp"

namespace vmp::sim {
namespace {

PowerBreakdown sample_power() {
  PowerBreakdown p;
  p.idle = 138.0;
  p.cpu_dynamic = 40.0;
  p.llc_penalty = 2.0;
  p.memory = 6.0;
  p.disk = 4.0;
  return p;
}

TEST(MsrFile, UnwrittenRegistersReadZero) {
  MsrFile msr;
  EXPECT_EQ(msr.read(kMsrPkgEnergyStatus), 0u);
  EXPECT_EQ(msr.populated(), 0u);
}

TEST(MsrFile, WriteReadRoundTrip) {
  MsrFile msr;
  msr.write(0x611, 0xDEADBEEFULL);
  EXPECT_EQ(msr.read(0x611), 0xDEADBEEFULL);
  EXPECT_EQ(msr.populated(), 1u);
}

TEST(RaplSimulator, InitializesPowerUnitRegister) {
  MsrFile msr;
  RaplSimulator rapl(msr, 14);
  const std::uint64_t unit = msr.read(kMsrRaplPowerUnit);
  EXPECT_EQ((unit >> 8) & 0x1F, 14u);
  EXPECT_NEAR(rapl.joules_per_count(), std::ldexp(1.0, -14), 1e-18);
}

TEST(RaplSimulator, EsuValidation) {
  MsrFile msr;
  EXPECT_THROW(RaplSimulator(msr, 0), std::invalid_argument);
  EXPECT_THROW(RaplSimulator(msr, 32), std::invalid_argument);
}

TEST(RaplSimulator, DomainsAccumulateTheRightRails) {
  MsrFile msr;
  RaplSimulator sim(msr, 14);
  RaplReader reader(msr);
  sim.accumulate(sample_power(), 10.0);
  // PP0 = cpu_dynamic - llc = 38 W; PKG = PP0 + idle = 176 W; DRAM = 6 W.
  EXPECT_NEAR(reader.energy_since_last_j(RaplDomain::kPp0), 380.0, 0.01);
  EXPECT_NEAR(reader.energy_since_last_j(RaplDomain::kPackage), 1760.0, 0.01);
  EXPECT_NEAR(reader.energy_since_last_j(RaplDomain::kDram), 60.0, 0.01);
}

TEST(RaplSimulator, FractionalCountsCarryOver) {
  MsrFile msr;
  RaplSimulator sim(msr, 14);
  RaplReader reader(msr);
  // Tiny increments that individually round to < 1 count must still sum.
  const double tiny_j = sim.joules_per_count() / 4.0;
  PowerBreakdown p;
  p.cpu_dynamic = tiny_j;  // 1 W-equivalent scaled: use dt=1 below
  for (int i = 0; i < 8; ++i) sim.accumulate(p, 1.0);
  EXPECT_NEAR(reader.energy_since_last_j(RaplDomain::kPp0), 8.0 * tiny_j,
              sim.joules_per_count());
}

TEST(RaplReader, AveragePower) {
  MsrFile msr;
  RaplSimulator sim(msr, 14);
  RaplReader reader(msr);
  sim.accumulate(sample_power(), 2.0);
  EXPECT_NEAR(reader.average_power_w(RaplDomain::kDram, 2.0), 6.0, 0.01);
  EXPECT_THROW(reader.average_power_w(RaplDomain::kDram, 0.0),
               std::invalid_argument);
}

TEST(RaplReader, HandlesCounterWraparound) {
  MsrFile msr;
  RaplSimulator sim(msr, 14);
  // Pre-position the package counter near the 32-bit wrap.
  msr.write(kMsrPkgEnergyStatus, 0xFFFFFF00ULL);
  RaplReader reader(msr);
  PowerBreakdown p;
  p.idle = 0.0;
  p.cpu_dynamic = 1000.0;  // 1000 J/s -> 2^14 counts per joule
  sim.accumulate(p, 10.0);  // 10 kJ => counter wraps
  const double energy = reader.energy_since_last_j(RaplDomain::kPackage);
  EXPECT_NEAR(energy, 10000.0, 1.0);
}

TEST(RaplReader, RequiresInitializedUnitRegister) {
  MsrFile msr;  // no RaplSimulator -> unit register zero
  EXPECT_THROW(RaplReader{msr}, std::runtime_error);
}

TEST(Rapl, DomainNamesAndAddresses) {
  EXPECT_STREQ(to_string(RaplDomain::kPackage), "package");
  EXPECT_STREQ(to_string(RaplDomain::kPp0), "pp0");
  EXPECT_STREQ(to_string(RaplDomain::kDram), "dram");
  EXPECT_EQ(msr_address(RaplDomain::kPackage), 0x611u);
  EXPECT_EQ(msr_address(RaplDomain::kDram), 0x619u);
  EXPECT_EQ(msr_address(RaplDomain::kPp0), 0x639u);
}

TEST(Rapl, WrapIntervalIsRealistic) {
  // Sanity-check the wrap math the reader exists for: at 100 W and ESU=14 the
  // 32-bit counter wraps in ~44 minutes.
  const double joules_per_count = std::ldexp(1.0, -14);
  const double seconds_to_wrap = 4294967296.0 * joules_per_count / 100.0;
  EXPECT_GT(seconds_to_wrap, 2000.0);
  EXPECT_LT(seconds_to_wrap, 3000.0);
}

}  // namespace
}  // namespace vmp::sim
