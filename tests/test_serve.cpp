#include "serve/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "serve/query.hpp"
#include "serve/token_bucket.hpp"

namespace vmp::serve {
namespace {

/// Synthetic snapshot at integer time `t`: tenant 1 has drawn 100*t J at
/// t W; VM (0,1) has drawn 10*t J. Linear trajectories make every windowed
/// expectation computable by hand.
Snapshot synthetic_at(double t) {
  Snapshot snapshot;
  snapshot.tick = static_cast<std::uint64_t>(t);
  snapshot.time_s = t;
  snapshot.vms = {{0, 1, 1, t, 10.0 * t}, {0, 2, 2, 2.0 * t, 20.0 * t}};
  snapshot.tenants = {{1, t, 100.0 * t}, {2, 2.0 * t, 200.0 * t}};
  snapshot.total_power_w = 3.0 * t;
  snapshot.total_energy_j = 300.0 * t;
  return snapshot;
}

// --- SnapshotStore ----------------------------------------------------------

TEST(SnapshotStore, PublishStampsEpochsAndSwapsLatest) {
  SnapshotStore store(8);
  EXPECT_EQ(store.latest(), nullptr);
  EXPECT_EQ(store.oldest(), nullptr);
  EXPECT_THROW(SnapshotStore(0), std::invalid_argument);

  store.publish(synthetic_at(1.0));
  store.publish(synthetic_at(2.0));
  const auto latest = store.latest();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->epoch, 2u);
  EXPECT_DOUBLE_EQ(latest->time_s, 2.0);
  EXPECT_EQ(store.oldest()->epoch, 1u);
  EXPECT_EQ(store.published(), 2u);
}

TEST(SnapshotStore, RingEvictsOldestAtRetention) {
  SnapshotStore store(3);
  for (int t = 1; t <= 5; ++t) store.publish(synthetic_at(t));
  EXPECT_EQ(store.oldest()->epoch, 3u);  // epochs 1 and 2 evicted.
  EXPECT_EQ(store.latest()->epoch, 5u);
  EXPECT_EQ(store.at_or_before(2.5), nullptr);  // evicted history.
}

TEST(SnapshotStore, AtOrBeforeUsesStepSemantics) {
  SnapshotStore store(8);
  for (int t = 1; t <= 4; ++t) store.publish(synthetic_at(t));
  EXPECT_EQ(store.at_or_before(0.5), nullptr);  // predates the first.
  EXPECT_DOUBLE_EQ(store.at_or_before(1.0)->time_s, 1.0);  // inclusive.
  EXPECT_DOUBLE_EQ(store.at_or_before(2.7)->time_s, 2.0);
  EXPECT_DOUBLE_EQ(store.at_or_before(99.0)->time_s, 4.0);  // clamps.
}

TEST(SnapshotStore, FindersBinarySearchSortedRecords) {
  const Snapshot snapshot = synthetic_at(3.0);
  ASSERT_NE(snapshot.find_vm(0, 2), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.find_vm(0, 2)->energy_j, 60.0);
  EXPECT_EQ(snapshot.find_vm(1, 1), nullptr);
  ASSERT_NE(snapshot.find_tenant(2), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.find_tenant(2)->power_w, 6.0);
  EXPECT_EQ(snapshot.find_tenant(9), nullptr);
}

TEST(SnapshotStore, PublishTickMirrorsEngineLedgers) {
  const std::vector<common::VmConfig> fleet = {common::demo_c_vm(),
                                               common::demo_c_vm()};
  core::CollectionOptions collection;
  collection.duration_s = 30.0;
  const auto dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), fleet, collection);

  fleet::FleetOptions options;
  options.hosts = 3;
  options.threads = 2;
  options.fleet_per_host = fleet;
  options.tenants = 2;
  options.seed = 7;
  fleet::FleetEngine engine(options, dataset);
  SnapshotStore store(64);
  store.attach(engine);
  engine.run(12);

  EXPECT_EQ(store.published(), 12u);
  const auto snapshot = store.latest();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->tick, 12u);
  EXPECT_EQ(snapshot->vms.size(), options.hosts * fleet.size());

  // Snapshot energies are the ledgers', verbatim.
  for (const VmRecord& record : snapshot->vms)
    EXPECT_DOUBLE_EQ(record.energy_j,
                     engine.host_ledger(record.host).energy_j(record.vm));
  const auto& tenants = engine.tenant_ledger();
  for (const TenantRecord& record : snapshot->tenants)
    EXPECT_DOUBLE_EQ(record.energy_j, tenants.tenant_energy_j(record.tenant));
  EXPECT_DOUBLE_EQ(snapshot->total_energy_j, tenants.total_energy_j());
  EXPECT_DOUBLE_EQ(snapshot->unattributed_j, tenants.unattributed_energy_j());

  // Tenant instant power is the sum of the tenant's VM shares.
  for (const TenantRecord& tenant : snapshot->tenants) {
    double sum = 0.0;
    for (const VmRecord& record : snapshot->vms)
      if (record.tenant == tenant.tenant) sum += record.power_w;
    EXPECT_DOUBLE_EQ(tenant.power_w, sum);
  }

  // Earlier epochs stay immutable and monotone in cumulative energy.
  const auto mid = store.at_or_before(6.0);
  ASSERT_NE(mid, nullptr);
  EXPECT_LT(mid->total_energy_j, snapshot->total_energy_j);
}

// Publish-vs-read race: one writer publishing while readers traverse
// latest() and at_or_before(). Run under TSan in CI; any unsynchronized
// access to the ring or a snapshot is a reported race, any torn snapshot
// shows up as an inconsistent (time_s, epoch) pair.
TEST(SnapshotStore, ConcurrentPublishAndReadIsRaceFree) {
  SnapshotStore store(16);
  constexpr int kPublishes = 2000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r)
    readers.emplace_back([&store, &stop] {
      double last_time = 0.0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (const auto latest = store.latest()) {
          // Published snapshots are immutable: time never goes backwards
          // and the payload always matches the synthetic trajectory.
          EXPECT_GE(latest->time_s, last_time);
          last_time = latest->time_s;
          ASSERT_EQ(latest->tenants.size(), 2u);
          EXPECT_DOUBLE_EQ(latest->tenants[0].energy_j,
                           100.0 * latest->time_s);
        }
        if (const auto mid = store.at_or_before(kPublishes / 2.0)) {
          EXPECT_LE(mid->time_s, kPublishes / 2.0);
        }
      }
    });

  for (int t = 1; t <= kPublishes; ++t) store.publish(synthetic_at(t));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(store.latest()->epoch, static_cast<std::uint64_t>(kPublishes));
}

// --- TokenBucket ------------------------------------------------------------

TEST(TokenBucket, BurstThenRefillAtRate) {
  TokenBucket bucket(2.0, 3.0);  // 3 deep, 2 tokens/s.
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));  // burst exhausted.
  EXPECT_FALSE(bucket.try_acquire(0.4));  // 0.8 tokens: still short of 1.
  EXPECT_TRUE(bucket.try_acquire(0.6));   // 1.2 tokens refilled.
  EXPECT_FALSE(bucket.try_acquire(0.6));
}

TEST(TokenBucket, CapsAtBurstAndToleratesBackwardsClock) {
  TokenBucket bucket(1000.0, 2.0);
  EXPECT_TRUE(bucket.try_acquire(0.0));
  // A long idle refills to the cap, not beyond.
  EXPECT_DOUBLE_EQ(bucket.available(100.0), 2.0);
  EXPECT_TRUE(bucket.try_acquire(100.0));
  EXPECT_TRUE(bucket.try_acquire(99.0));  // clock skew: no refill, no throw.
  EXPECT_FALSE(bucket.try_acquire(99.0));
}

TEST(TokenBucket, RejectsBadParameters) {
  EXPECT_THROW(TokenBucket(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(-1.0, 1.0), std::invalid_argument);
}

// --- QueryEngine ------------------------------------------------------------

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() {
    for (int t = 1; t <= 24; ++t) store_.publish(synthetic_at(t));
  }

  Request window(QueryKind kind, double t0, double t1,
                 std::uint32_t tenant = 1) const {
    Request request;
    request.kind = kind;
    request.tenant = tenant;
    request.host = 0;
    request.vm = 1;
    request.t0 = t0;
    request.t1 = t1;
    return request;
  }

  SnapshotStore store_{64};
};

TEST_F(QueryEngineTest, PointQueriesReadTheLatestSnapshot) {
  QueryEngine engine(store_);
  Request request;
  request.kind = QueryKind::kVmPower;
  request.host = 0;
  request.vm = 2;
  Response response = engine.execute(request);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.epoch, 24u);
  EXPECT_DOUBLE_EQ(response.values.at(0), 48.0);

  request.kind = QueryKind::kTenantPower;
  request.tenant = 2;
  EXPECT_DOUBLE_EQ(engine.execute(request).values.at(0), 48.0);

  request.kind = QueryKind::kFleetPower;
  EXPECT_DOUBLE_EQ(engine.execute(request).values.at(0), 72.0);

  request.kind = QueryKind::kStats;
  response = engine.execute(request);
  ASSERT_EQ(response.values.size(), 7u);
  EXPECT_DOUBLE_EQ(response.values[0], 24.0);  // tick.
  EXPECT_DOUBLE_EQ(response.values[2], 2.0);   // vms.
  EXPECT_DOUBLE_EQ(response.values[3], 2.0);   // tenants.
}

TEST_F(QueryEngineTest, UnknownEntitiesAndEmptyStoreAreErrors) {
  QueryEngine engine(store_);
  Request request;
  request.kind = QueryKind::kVmPower;
  request.host = 7;
  request.vm = 7;
  Response response = engine.execute(request);
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::kUnknownEntity);

  SnapshotStore empty(4);
  QueryEngine cold(empty);
  EXPECT_EQ(cold.execute(request).code, ErrorCode::kNoSnapshot);
}

TEST_F(QueryEngineTest, WindowEnergyDifferencesBracketingSnapshots) {
  QueryEngine engine(store_);
  // [6, 18]: tenant 1 accrues 100 J/s -> 1200 J.
  Response response =
      engine.execute(window(QueryKind::kTenantEnergy, 6.0, 18.0));
  ASSERT_TRUE(response.ok);
  EXPECT_DOUBLE_EQ(response.values.at(0), 1200.0);

  // Fractional bounds step down to the covering snapshots: [5.9, 18.2]
  // resolves to epochs 5 and 18 -> 1300 J.
  response = engine.execute(window(QueryKind::kTenantEnergy, 5.9, 18.2));
  EXPECT_DOUBLE_EQ(response.values.at(0), 1300.0);

  // VM windows difference per-VM energy: 10 J/s over [2, 10].
  response = engine.execute(window(QueryKind::kVmEnergy, 2.0, 10.0));
  EXPECT_DOUBLE_EQ(response.values.at(0), 80.0);

  // An end beyond the newest snapshot clamps to it.
  response = engine.execute(window(QueryKind::kTenantEnergy, 20.0, 500.0));
  EXPECT_DOUBLE_EQ(response.values.at(0), 400.0);
}

TEST_F(QueryEngineTest, GenesisWindowsGetZeroBaseline) {
  QueryEngine engine(store_);
  // t0 before the first snapshot while epoch 1 is retained: energy since
  // accounting start, not an error.
  const Response response =
      engine.execute(window(QueryKind::kTenantEnergy, 0.0, 12.0));
  ASSERT_TRUE(response.ok);
  EXPECT_DOUBLE_EQ(response.values.at(0), 1200.0);
}

TEST_F(QueryEngineTest, EvictedHistoryIsOutOfRetention) {
  SnapshotStore small(4);
  for (int t = 1; t <= 10; ++t) small.publish(synthetic_at(t));
  QueryEngine engine(small);
  const Response response =
      engine.execute(window(QueryKind::kTenantEnergy, 2.0, 9.0));
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::kOutOfRetention);
}

TEST_F(QueryEngineTest, BadWindowsAreRejected) {
  QueryEngine engine(store_);
  Response response = engine.execute(window(QueryKind::kTenantEnergy, 9, 3));
  ASSERT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::kBadWindow);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine.execute(window(QueryKind::kVmEnergy, nan, 3.0)).code,
            ErrorCode::kBadWindow);
}

TEST_F(QueryEngineTest, FlatCostIsEnergyTimesTariff) {
  QueryEngineOptions options;
  options.tou.offpeak_usd_per_kwh = 0.20;
  options.tou.peak_usd_per_kwh = 0.20;
  QueryEngine engine(store_, options);
  const Response response =
      engine.execute(window(QueryKind::kTenantCost, 4.0, 14.0));
  ASSERT_TRUE(response.ok);
  ASSERT_EQ(response.values.size(), 2u);
  EXPECT_DOUBLE_EQ(response.values[1], 1000.0);  // J.
  EXPECT_NEAR(response.values[0], 1000.0 / 3.6e6 * 0.20, 1e-15);
}

TEST_F(QueryEngineTest, TouCostPricesWhenEnergyWasDrawn) {
  QueryEngineOptions options;
  options.tou.offpeak_usd_per_kwh = 0.10;
  options.tou.peak_usd_per_kwh = 0.25;
  options.tou.seconds_per_hour = 1.0;  // peak window is [17, 21) s.
  QueryEngine engine(store_, options);
  // [16, 22]: snapshots exist at every boundary, 100 J/s throughout:
  // 100 J off-peak, 400 J peak, 100 J off-peak.
  const Response response =
      engine.execute(window(QueryKind::kTenantCost, 16.0, 22.0));
  ASSERT_TRUE(response.ok);
  EXPECT_DOUBLE_EQ(response.values[1], 600.0);
  EXPECT_NEAR(response.values[0],
              (200.0 * 0.10 + 400.0 * 0.25) / 3.6e6, 1e-15);
  // The segmented bill exceeds the all-off-peak bill: timing matters.
  EXPECT_GT(response.values[0], 600.0 / 3.6e6 * 0.10);
}

TEST_F(QueryEngineTest, CacheHitsPointQueriesUntilNextPublish) {
  QueryEngine engine(store_);
  Request request;
  request.kind = QueryKind::kFleetPower;
  const Response first = engine.execute(request);
  const Response again = engine.execute(request);
  EXPECT_EQ(engine.cache_hits(), 1u);
  EXPECT_EQ(engine.cache_misses(), 1u);
  EXPECT_EQ(first.epoch, again.epoch);

  // A publish moves the epoch: the same point query misses and re-evaluates.
  store_.publish(synthetic_at(25.0));
  const Response fresh = engine.execute(request);
  EXPECT_EQ(engine.cache_misses(), 2u);
  EXPECT_EQ(fresh.epoch, 25u);
  EXPECT_DOUBLE_EQ(fresh.values.at(0), 75.0);
}

TEST_F(QueryEngineTest, WindowResultsSurvivePublishes) {
  QueryEngine engine(store_);
  const Request request = window(QueryKind::kTenantEnergy, 3.0, 9.0);
  (void)engine.execute(request);
  store_.publish(synthetic_at(25.0));
  (void)engine.execute(request);  // same epoch pair -> still cached.
  EXPECT_EQ(engine.cache_hits(), 1u);
  EXPECT_EQ(engine.cache_misses(), 1u);
}

TEST_F(QueryEngineTest, LruEvictsColdEntriesAndZeroCapacityDisables) {
  QueryEngineOptions tiny;
  tiny.cache_capacity = 2;
  tiny.cache_shards = 1;  // global LRU order, so the arithmetic stays exact.
  QueryEngine engine(store_, tiny);
  // Point queries carry exactly one cache entry each (windows add a second,
  // fast key), which keeps the eviction arithmetic exact.
  Request a, b, c;
  a.kind = QueryKind::kVmPower;
  a.host = 0;
  a.vm = 1;
  b.kind = QueryKind::kVmPower;
  b.host = 0;
  b.vm = 2;
  c.kind = QueryKind::kTenantPower;
  c.tenant = 1;
  (void)engine.execute(a);
  (void)engine.execute(b);
  (void)engine.execute(a);  // touch a; b is now coldest.
  (void)engine.execute(c);  // evicts b.
  (void)engine.execute(a);  // hit.
  (void)engine.execute(b);  // miss: was evicted.
  EXPECT_EQ(engine.cache_hits(), 2u);
  EXPECT_EQ(engine.cache_misses(), 4u);

  QueryEngineOptions off;
  off.cache_capacity = 0;
  QueryEngine uncached(store_, off);
  (void)uncached.execute(a);
  (void)uncached.execute(a);
  EXPECT_EQ(uncached.cache_hits(), 0u);
  EXPECT_EQ(uncached.cache_misses(), 2u);
}

TEST_F(QueryEngineTest, CoalescingDeduplicatesConcurrentIdenticalQueries) {
  constexpr int kThreads = 4;
  fleet::Metrics metrics;
  QueryEngineOptions options;
  options.metrics = &metrics;
  std::atomic<int> started{0};
  std::atomic<bool> hold_armed{true};
  // The first leader stalls until every thread has entered execute(), then
  // grants a grace period for the others to reach the in-flight slot.
  options.coalesce_hold = [&] {
    if (!hold_armed.exchange(false)) return;
    while (started.load() < kThreads)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  QueryEngine engine(store_, options);

  const Request request = window(QueryKind::kTenantCost, 3.0, 9.0);
  std::vector<Response> responses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      started.fetch_add(1);
      responses[i] = engine.execute(request);
    });
  for (std::thread& thread : threads) thread.join();

  // One evaluation ran; everyone else attached to it.
  EXPECT_EQ(engine.cache_misses(), 1u);
  EXPECT_EQ(engine.coalesced(), static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(engine.cache_hits(), 0u);
  ASSERT_TRUE(responses[0].ok);
  for (int i = 1; i < kThreads; ++i)
    EXPECT_EQ(format_response_text(responses[i]),
              format_response_text(responses[0]))
        << "follower " << i << " payload diverged";
  EXPECT_NE(metrics.to_prometheus().find("vmpower_serve_coalesced_total 3"),
            std::string::npos);
}

TEST_F(QueryEngineTest, CoalescedWaitersSurviveEvictionDuringComputation) {
  // Capacity 1 + one shard: *every* insert evicts the previous entry, so the
  // window between the leader's cache insert and a follower's wakeup is
  // guaranteed to see churn. The follower must still get the leader's
  // response — it reads the in-flight slot, never the cache.
  QueryEngineOptions options;
  options.cache_capacity = 1;
  options.cache_shards = 1;
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::atomic<bool> hold_armed{true};
  options.coalesce_hold = [&] {
    if (!hold_armed.exchange(false)) return;  // churn queries don't stall.
    held.store(true);
    while (!release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  QueryEngine engine(store_, options);

  const Request slow = window(QueryKind::kTenantEnergy, 3.0, 9.0);
  Response leader_response, follower_response;
  std::thread leader([&] { leader_response = engine.execute(slow); });
  while (!held.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::thread follower([&] { follower_response = engine.execute(slow); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // attach.

  // Churn the single cache slot while the computation is still in flight.
  Request churn;
  churn.kind = QueryKind::kFleetPower;
  (void)engine.execute(churn);
  release.store(true);
  leader.join();
  follower.join();

  ASSERT_TRUE(leader_response.ok);
  EXPECT_DOUBLE_EQ(leader_response.values.at(0), 600.0);  // 100 J/s * 6 s.
  EXPECT_EQ(engine.coalesced(), 1u);
  EXPECT_EQ(format_response_text(follower_response),
            format_response_text(leader_response));
}

TEST_F(QueryEngineTest, CoalescingWorksWithCachingDisabled) {
  QueryEngineOptions options;
  options.cache_capacity = 0;  // in-flight table lives in the shards anyway.
  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  std::atomic<bool> hold_armed{true};
  options.coalesce_hold = [&] {
    if (!hold_armed.exchange(false)) return;
    held.store(true);
    while (!release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  QueryEngine engine(store_, options);

  Request request;
  request.kind = QueryKind::kStats;
  Response first, second;
  std::thread leader([&] { first = engine.execute(request); });
  while (!held.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::thread follower([&] { second = engine.execute(request); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  release.store(true);
  leader.join();
  follower.join();

  EXPECT_EQ(engine.cache_misses(), 1u);
  EXPECT_EQ(engine.coalesced(), 1u);
  EXPECT_EQ(format_response_text(second), format_response_text(first));
}

TEST_F(QueryEngineTest, CoalescingCanBeDisabled) {
  QueryEngineOptions options;
  options.coalesce = false;
  QueryEngine engine(store_, options);
  Request request;
  request.kind = QueryKind::kFleetPower;
  (void)engine.execute(request);
  (void)engine.execute(request);
  EXPECT_EQ(engine.cache_misses(), 1u);
  EXPECT_EQ(engine.cache_hits(), 1u);
  EXPECT_EQ(engine.coalesced(), 0u);
}

TEST_F(QueryEngineTest, ShardedCacheExportsPerShardLookupCounters) {
  fleet::Metrics metrics;
  QueryEngineOptions options;
  options.cache_shards = 4;
  options.metrics = &metrics;
  QueryEngine engine(store_, options);
  EXPECT_EQ(engine.shard_count(), 4u);

  Request request;
  request.kind = QueryKind::kFleetPower;
  (void)engine.execute(request);  // miss in some shard.
  (void)engine.execute(request);  // hit in the same shard.
  const std::string text = metrics.to_prometheus();
  EXPECT_NE(text.find("vmpower_serve_cache_shard_hits_total{shard="),
            std::string::npos);
  EXPECT_NE(text.find("vmpower_serve_cache_shard_misses_total{shard="),
            std::string::npos);
  EXPECT_NE(text.find("vmpower_serve_cache_hits_total 1"), std::string::npos);

  // Shard count 0 clamps to one shard rather than dividing by zero.
  QueryEngineOptions zero;
  zero.cache_shards = 0;
  QueryEngine clamped(store_, zero);
  EXPECT_EQ(clamped.shard_count(), 1u);
}

TEST_F(QueryEngineTest, CacheCountersAreExportedWhenMetricsAttached) {
  fleet::Metrics metrics;
  QueryEngineOptions options;
  options.metrics = &metrics;
  QueryEngine engine(store_, options);
  Request request;
  request.kind = QueryKind::kStats;
  (void)engine.execute(request);
  (void)engine.execute(request);
  const std::string text = metrics.to_prometheus();
  EXPECT_NE(text.find("vmpower_serve_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("vmpower_serve_cache_misses_total 1"),
            std::string::npos);
}

TEST_F(QueryEngineTest, RejectsInvalidTouSchedule) {
  QueryEngineOptions options;
  options.tou.offpeak_usd_per_kwh = -1.0;
  EXPECT_THROW(QueryEngine(store_, options), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::serve
