#include "core/shared_weights.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/linear_approx.hpp"
#include "util/rng.hpp"

namespace vmp::core {
namespace {

using common::StateVector;

// Table where the true law is combo-independent: power = 13 v0 + 23 v1.
VscTable additive_table(std::uint64_t seed, double coupling = 0.0) {
  VscTable table(2, 0.01);
  util::Rng rng(seed);
  for (int k = 0; k < 400; ++k) {
    const double c0 = rng.uniform(0.0, 2.0);
    const double c1 = rng.uniform(0.0, 1.0);
    table.record(0b01, {{StateVector::cpu_only(c0), StateVector::zero()}},
                 13.0 * c0);
    table.record(0b10, {{StateVector::zero(), StateVector::cpu_only(c1)}},
                 23.0 * c1);
    table.record(0b11, {{StateVector::cpu_only(c0), StateVector::cpu_only(c1)}},
                 13.0 * c0 + 23.0 * c1 - coupling * std::min(c0, c1));
  }
  return table;
}

TEST(SharedWeights, RecoversAdditiveLaw) {
  const auto approx = SharedWeightApprox::fit(additive_table(1));
  EXPECT_EQ(approx.num_vhcs(), 2u);
  EXPECT_NEAR(approx.weights()[0], 13.0, 0.05);
  EXPECT_NEAR(approx.weights()[common::kNumComponents], 23.0, 0.05);
  EXPECT_NEAR(approx.fit_rmse(), 0.0, 0.08);  // 0.01-quantization residual
  EXPECT_EQ(approx.sample_count(), 1200u);
}

TEST(SharedWeights, PredictsUnmeasuredCombosByConstruction) {
  // Unlike the per-combo model, shared weights answer any combination.
  VscTable table(2, 0.01);
  util::Rng rng(2);
  for (int k = 0; k < 200; ++k) {
    const double c = rng.uniform(0.0, 1.5);
    table.record(0b01, {{StateVector::cpu_only(c), StateVector::zero()}},
                 10.0 * c);
    table.record(0b10, {{StateVector::zero(), StateVector::cpu_only(c)}},
                 30.0 * c);
  }
  const auto approx = SharedWeightApprox::fit(table);
  const double joint = approx.predict(
      {{StateVector::cpu_only(1.0), StateVector::cpu_only(1.0)}});
  EXPECT_NEAR(joint, 40.0, 0.3);
}

TEST(SharedWeights, CouplingBecomesResidual) {
  // With a cross-VHC coupling the per-combo model fits each combination
  // exactly while the shared model absorbs the coupling as residual error —
  // the accuracy price of linear-in-types measurement cost.
  const double coupling = 4.0;
  const auto table = additive_table(3, coupling);
  const auto shared = SharedWeightApprox::fit(table);
  const auto per_combo = VhcLinearApprox::fit(table);
  EXPECT_GT(shared.fit_rmse(), 0.3);
  EXPECT_LT(per_combo.fit_rmse(0b11), shared.fit_rmse() + 1e-9);
}

TEST(SharedWeights, Validation) {
  const VscTable empty(1, 0.01);
  EXPECT_THROW(SharedWeightApprox::fit(empty), std::invalid_argument);
  const auto table = additive_table(4);
  EXPECT_THROW(SharedWeightApprox::fit(table, -1.0), std::invalid_argument);
  const auto approx = SharedWeightApprox::fit(table);
  EXPECT_THROW(approx.predict({{StateVector::zero()}}), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::core
