#include "core/shapley.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace vmp::core {
namespace {

using common::StateVector;

TEST(ShapleyWeight, MatchesPaperFormula) {
  // 1 / ((n - s) * C(n, s)).
  EXPECT_DOUBLE_EQ(shapley_weight(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(shapley_weight(2, 1), 0.5);
  EXPECT_DOUBLE_EQ(shapley_weight(3, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(shapley_weight(3, 1), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(shapley_weight(3, 2), 1.0 / 3.0);
  EXPECT_THROW(shapley_weight(3, 3), std::invalid_argument);
  EXPECT_THROW(shapley_weight(0, 0), std::invalid_argument);
}

TEST(ShapleyWeight, SumsToOneOverAllSubsets) {
  // Σ_{S ⊆ N\{i}} weight(|S|) = 1 for any i: the weights form a probability
  // distribution over arrival positions.
  for (std::size_t n : {2u, 5u, 10u, 16u}) {
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      // number of subsets of N\{i} with size s: C(n-1, s)
      double binom = 1.0;
      for (std::size_t j = 0; j < s; ++j)
        binom = binom * static_cast<double>(n - 1 - j) / static_cast<double>(j + 1);
      sum += binom * shapley_weight(n, s);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "n=" << n;
  }
}

TEST(Shapley, PaperFig6TwoVmGame) {
  // v({1}) = v({2}) = 13, v({1,2}) = 20 -> 10 W each (paper Sec. IV-B).
  const WorthFn v = [](Coalition s) {
    switch (s.size()) {
      case 0: return 0.0;
      case 1: return 13.0;
      default: return 20.0;
    }
  };
  const auto phi = shapley_values(2, v);
  EXPECT_NEAR(phi[0], 10.0, 1e-12);
  EXPECT_NEAR(phi[1], 10.0, 1e-12);
}

TEST(Shapley, AdditiveGameGivesSingletonWorths) {
  const double w[4] = {3.0, 5.0, 7.0, 11.0};
  const WorthFn v = [&](Coalition s) {
    double sum = 0.0;
    for (Player i : s.members()) sum += w[i];
    return sum;
  };
  const auto phi = shapley_values(4, v);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(phi[i], w[i], 1e-12);
}

TEST(Shapley, GloveMarketGame) {
  // Classic 3-player glove game: players 0,1 hold left gloves, player 2 the
  // right glove; v = 1 iff the coalition holds both kinds.
  const WorthFn v = [](Coalition s) {
    const bool left = s.contains(0) || s.contains(1);
    const bool right = s.contains(2);
    return left && right ? 1.0 : 0.0;
  };
  const auto phi = shapley_values(3, v);
  EXPECT_NEAR(phi[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[2], 4.0 / 6.0, 1e-12);
}

TEST(Shapley, DummyPlayerGetsZero) {
  const WorthFn v = [](Coalition s) {
    return s.contains(0) ? 10.0 : 0.0;  // player 1 is a dummy
  };
  const auto phi = shapley_values(2, v);
  EXPECT_NEAR(phi[0], 10.0, 1e-12);
  EXPECT_NEAR(phi[1], 0.0, 1e-12);
}

TEST(Shapley, Validation) {
  const WorthFn v = [](Coalition) { return 0.0; };
  EXPECT_THROW(shapley_values(0, v), std::invalid_argument);
  EXPECT_THROW(shapley_values(kMaxPlayers + 1, v), std::invalid_argument);
}

TEST(Shapley, PaperFig7ScenarioA) {
  // Fig. 7(a): VM2 and VM3 competing lose 1 W; VM1 is uninvolved.
  const WorthFn v = [](Coalition s) {
    const double base = 5.0 * static_cast<double>(s.size());
    return s.contains(1) && s.contains(2) ? base - 1.0 : base;
  };
  const auto phi = shapley_values(3, v);
  // VM1 never causes a decline -> keeps its stand-alone 5 W.
  EXPECT_NEAR(phi[0], 5.0, 1e-12);
  // The 1 W decline is split between the two competitors.
  EXPECT_NEAR(phi[1], 4.5, 1e-12);
  EXPECT_NEAR(phi[2], 4.5, 1e-12);
}

TEST(NondetShapley, ReducesToDeterministicAtFixedStates) {
  const std::vector<StateVector> states = {StateVector::cpu_only(1.0),
                                           StateVector::cpu_only(1.0)};
  const StateWorthFn v = [](Coalition s, std::span<const StateVector> c) {
    double sum = 0.0;
    for (Player i : s.members()) sum += 13.0 * c[i].cpu();
    if (s.size() == 2) sum -= 6.0;
    return sum;
  };
  const auto phi = nondet_shapley_values(states, v);
  EXPECT_NEAR(phi[0], 10.0, 1e-12);
  EXPECT_NEAR(phi[1], 10.0, 1e-12);
}

TEST(NondetShapley, StatesModulateShares) {
  const std::vector<StateVector> states = {StateVector::cpu_only(1.0),
                                           StateVector::cpu_only(0.5)};
  const StateWorthFn v = [](Coalition s, std::span<const StateVector> c) {
    double sum = 0.0;
    for (Player i : s.members()) sum += 13.0 * c[i].cpu();
    return sum;
  };
  const auto phi = nondet_shapley_values(states, v);
  EXPECT_NEAR(phi[0], 13.0, 1e-12);
  EXPECT_NEAR(phi[1], 6.5, 1e-12);
}

TEST(NondetShapley, EmptyStatesRejected) {
  const StateWorthFn v = [](Coalition, std::span<const StateVector>) {
    return 0.0;
  };
  EXPECT_THROW(nondet_shapley_values({}, v), std::invalid_argument);
}

// Property sweep over random games: efficiency holds for every game, and
// the allocation is invariant under player relabelling (anonymity).
class ShapleyRandomGames : public ::testing::TestWithParam<int> {};

TEST_P(ShapleyRandomGames, EfficiencyOnRandomGames) {
  util::Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_u64(6);
  std::vector<double> worth(std::size_t{1} << n);
  for (double& w : worth) w = rng.uniform(0.0, 100.0);
  worth[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  const auto phi = shapley_values(n, v);
  const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
  EXPECT_NEAR(total, worth.back(), 1e-9);
}

TEST_P(ShapleyRandomGames, AnonymityUnderPlayerSwap) {
  util::Rng rng(GetParam() * 7919 + 1);
  const std::size_t n = 3;
  std::vector<double> worth(8);
  for (double& w : worth) w = rng.uniform(0.0, 50.0);
  worth[0] = 0.0;
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  // Relabel players 0 <-> 1 and recompute: shares must swap accordingly.
  const auto swap_mask = [](Coalition::Mask m) {
    const Coalition::Mask bit0 = (m >> 0) & 1, bit1 = (m >> 1) & 1;
    return (m & ~3u) | (bit0 << 1) | (bit1 << 0);
  };
  const WorthFn v_swapped = [&](Coalition s) {
    return worth[swap_mask(s.mask())];
  };
  const auto phi = shapley_values(n, v);
  const auto phi_swapped = shapley_values(n, v_swapped);
  EXPECT_NEAR(phi[0], phi_swapped[1], 1e-9);
  EXPECT_NEAR(phi[1], phi_swapped[0], 1e-9);
  EXPECT_NEAR(phi[2], phi_swapped[2], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapleyRandomGames, ::testing::Range(1, 21));

}  // namespace
}  // namespace vmp::core
