#include "core/vhc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/vm_config.hpp"

namespace vmp::core {
namespace {

using common::StateVector;

TEST(VhcUniverse, ConstructionAndLookup) {
  const VhcUniverse universe({10, 20, 30});
  EXPECT_EQ(universe.size(), 3u);
  EXPECT_EQ(universe.index_of(10), 0u);
  EXPECT_EQ(universe.index_of(30), 2u);
  EXPECT_EQ(universe.type_at(1), 20u);
  EXPECT_TRUE(universe.knows(20));
  EXPECT_FALSE(universe.knows(99));
  EXPECT_THROW(universe.index_of(99), std::out_of_range);
  EXPECT_THROW(universe.type_at(3), std::out_of_range);
}

TEST(VhcUniverse, ComboCountIsTwoToTheR) {
  EXPECT_EQ(VhcUniverse({1}).combo_count(), 2u);
  EXPECT_EQ(VhcUniverse({1, 2, 3, 4}).combo_count(), 16u);  // paper Sec. VII-A
}

TEST(VhcUniverse, Validation) {
  EXPECT_THROW(VhcUniverse({}), std::invalid_argument);
  EXPECT_THROW(VhcUniverse({1, 1}), std::invalid_argument);
  std::vector<common::VmTypeId> too_many(VhcUniverse::kMaxVhcs + 1);
  for (std::size_t i = 0; i < too_many.size(); ++i) too_many[i] = i;
  EXPECT_THROW(VhcUniverse{too_many}, std::invalid_argument);
}

TEST(VhcUniverse, FromFleetDeduplicatesInFirstSeenOrder) {
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {
      catalogue[2], catalogue[0], catalogue[2], catalogue[0]};
  const VhcUniverse universe = VhcUniverse::from_fleet(fleet);
  EXPECT_EQ(universe.size(), 2u);
  EXPECT_EQ(universe.type_at(0), catalogue[2].type_id);
  EXPECT_EQ(universe.type_at(1), catalogue[0].type_id);
}

TEST(VhcPartition, GroupsPlayersByType) {
  const VhcUniverse universe({7, 8});
  const VhcPartition partition(universe, {7, 8, 7, 7});
  EXPECT_EQ(partition.player_count(), 4u);
  EXPECT_EQ(partition.num_vhcs(), 2u);
  EXPECT_EQ(partition.vhc_of(0), 0u);
  EXPECT_EQ(partition.vhc_of(1), 1u);
  EXPECT_EQ(partition.vhc_of(3), 0u);
  EXPECT_THROW(partition.vhc_of(4), std::out_of_range);
}

TEST(VhcPartition, UnknownTypeRejected) {
  const VhcUniverse universe({7});
  EXPECT_THROW(VhcPartition(universe, {7, 9}), std::out_of_range);
}

TEST(VhcPartition, ComboOfCoalitions) {
  const VhcUniverse universe({7, 8, 9});
  const VhcPartition partition(universe, {7, 8, 7});
  EXPECT_EQ(partition.combo_of(Coalition::empty()), 0u);
  EXPECT_EQ(partition.combo_of(Coalition::single(0)), 0b001u);
  EXPECT_EQ(partition.combo_of(Coalition::single(1)), 0b010u);
  EXPECT_EQ(partition.combo_of(Coalition{0b101}), 0b001u);  // both type-7 VMs
  EXPECT_EQ(partition.combo_of(Coalition::grand(3)), 0b011u);
}

TEST(VhcPartition, AggregateSumsPerVhc) {
  // Paper Eq. 8: v_j = Σ c_i over the VHC's members in the coalition.
  const VhcUniverse universe({7, 8});
  const VhcPartition partition(universe, {7, 8, 7});
  const std::vector<StateVector> states = {StateVector::cpu_only(0.4),
                                           StateVector::cpu_only(0.9),
                                           StateVector::cpu_only(0.5)};
  const auto all = partition.aggregate(Coalition::grand(3), states);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NEAR(all[0].cpu(), 0.9, 1e-12);  // 0.4 + 0.5
  EXPECT_NEAR(all[1].cpu(), 0.9, 1e-12);

  const auto partial = partition.aggregate(Coalition{0b100}, states);
  EXPECT_NEAR(partial[0].cpu(), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(partial[1].cpu(), 0.0);
}

TEST(VhcPartition, AggregateValidatesStateCount) {
  const VhcUniverse universe({7});
  const VhcPartition partition(universe, {7, 7});
  const std::vector<StateVector> wrong = {StateVector::cpu_only(0.5)};
  EXPECT_THROW(partition.aggregate(Coalition::grand(2), wrong),
               std::invalid_argument);
}

TEST(VhcPartition, AggregatesAllComponents) {
  const VhcUniverse universe({1});
  const VhcPartition partition(universe, {1, 1});
  StateVector a = StateVector::cpu_only(0.2);
  a[common::Component::kMemory] = 0.3;
  StateVector b = StateVector::cpu_only(0.4);
  b[common::Component::kDiskIo] = 0.1;
  const auto agg = partition.aggregate(Coalition::grand(2), {{a, b}});
  EXPECT_NEAR(agg[0].cpu(), 0.6, 1e-12);
  EXPECT_NEAR(agg[0].memory(), 0.3, 1e-12);
  EXPECT_NEAR(agg[0].disk_io(), 0.1, 1e-12);
}

}  // namespace
}  // namespace vmp::core
