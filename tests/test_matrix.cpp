#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::util {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
}

TEST(Matrix, InitializerListAndRagged) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  m.at(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatch) {
  Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x = {1.0, 1.0};
  const auto y = a * std::span<const double>(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 5.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  a *= 3.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
  EXPECT_THROW(a + Matrix(2, 2), std::invalid_argument);
}

TEST(Matrix, IdentityIsMultiplicativeNeutral) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix c = a * Matrix::identity(2);
  EXPECT_DOUBLE_EQ((c - a).max_abs(), 0.0);
}

TEST(Matrix, RowSpanWritable) {
  Matrix a(2, 2);
  auto row = a.row(1);
  row[0] = 9.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 9.0);
  EXPECT_THROW(a.row(5), std::out_of_range);
}

TEST(Dot, BasicsAndMismatch) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const std::vector<double> c = {1.0};
  EXPECT_THROW(dot(a, c), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::util
