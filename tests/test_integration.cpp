// End-to-end integration tests: the paper's headline phenomena, reproduced
// through the full stack (simulator -> telemetry -> offline training ->
// online estimation).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "baselines/power_model.hpp"
#include "baselines/trainer.hpp"
#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "core/monte_carlo.hpp"
#include "core/shapley.hpp"
#include "sim/coalition_probe.hpp"
#include "sim/physical_machine.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"
#include "workload/spec_suite.hpp"
#include "workload/synthetic.hpp"

namespace vmp {
namespace {

using common::StateVector;

// Measures the marginal power of starting the two VMs in sequence on the
// given machine (the paper's Fig. 4 experiment), returning {first, second}.
std::pair<double, double> sequenced_marginals(const sim::MachineSpec& spec) {
  sim::MachineSpec packed = spec;
  packed.pack_affinity = 1.0;  // the measured platform co-scheduled siblings
  packed.affinity_jitter = 0.0;
  sim::PhysicalMachine machine(packed, 7);
  const auto a = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::BcFloatLoop>());
  const auto b = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::BcFloatLoop>());
  const auto mean_power = [&](double seconds) {
    const auto trace = sim::run_scenario(machine, seconds);
    return util::mean(trace.measured_power.values());
  };
  const double idle = mean_power(20.0);
  machine.hypervisor().start_vm(a);
  const double one = mean_power(20.0);
  machine.hypervisor().start_vm(b);
  const double both = mean_power(20.0);
  return {one - idle, both - one};
}

TEST(PaperShape, Fig4XeonSecondVmError46Percent) {
  const auto [first, second] = sequenced_marginals(sim::xeon_prototype());
  EXPECT_NEAR(first, 13.15, 0.5);
  // Power-model prediction for the second VM is `first`; the measured truth
  // is `second` — the paper reports a 46.15 % gap on the Xeon.
  const double error = (first - second) / first;
  EXPECT_NEAR(error, 0.4615, 0.05);
}

TEST(PaperShape, Fig4PentiumSecondVmError25Percent) {
  const auto [first, second] = sequenced_marginals(sim::pentium_desktop());
  const double error = (first - second) / first;
  EXPECT_NEAR(error, 0.2522, 0.05);
}

TEST(PaperShape, TableIIIShapleyTenEach) {
  sim::MachineSpec spec = sim::xeon_prototype();
  spec.pack_affinity = 1.0;
  const sim::CoalitionProbe probe(spec,
                                  {common::demo_c_vm(), common::demo_c_vm()});
  const std::vector<StateVector> states(2, StateVector::cpu_only(1.0));
  const auto phi = core::nondet_shapley_values(
      states, [&](core::Coalition s, std::span<const StateVector> c) {
        return probe.worth(s.mask(), c);
      });
  // v1 = 13.15, v12 = 13.15 + 7.08 = 20.23 -> ~10.1 W each (Table III ideal).
  EXPECT_NEAR(phi[0], phi[1], 1e-9);
  EXPECT_NEAR(phi[0] + phi[1], probe.worth(0b11, states), 1e-9);
  EXPECT_NEAR(phi[0], 10.1, 0.2);
}

TEST(PaperShape, FullPipelineEfficiencyIsExact) {
  // 5-VM heterogeneous mix (the Fig. 11 fleet): the Shapley-VHC estimator's
  // shares must sum to the measured power at every sample.
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {
      catalogue[0], catalogue[0], catalogue[1], catalogue[2], catalogue[3]};

  core::CollectionOptions options;
  options.duration_s = 120.0;
  const auto dataset = core::collect_offline_dataset(spec, fleet, options);
  core::ShapleyVhcEstimator estimator(dataset.universe, dataset.approximation);

  sim::PhysicalMachine machine(spec, 31);
  const auto benchmarks = wl::spec_subset();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i], wl::make_spec_workload(benchmarks[i % benchmarks.size()],
                                         900 + i));
    machine.hypervisor().start_vm(id);
  }

  for (int t = 0; t < 60; ++t) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
    ASSERT_NEAR(total, adjusted, 1e-6) << "t=" << t;
  }
}

TEST(PaperShape, VhcShapleyTracksExactShapley) {
  // Fig. 10's headline: the VHC-approximated Shapley stays within a few
  // percent of the exact (oracle) Shapley most of the time.
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {catalogue[0], catalogue[0],
                                               catalogue[1], catalogue[2]};

  core::CollectionOptions options;
  options.duration_s = 200.0;
  const auto dataset = core::collect_offline_dataset(spec, fleet, options);
  core::ShapleyVhcEstimator vhc(dataset.universe, dataset.approximation);

  std::vector<double> intensities;
  const wl::SpecBenchmark jobs[] = {
      wl::SpecBenchmark::kGcc, wl::SpecBenchmark::kSjeng,
      wl::SpecBenchmark::kNamd, wl::SpecBenchmark::kWrf};
  for (const auto job : jobs)
    intensities.push_back(wl::spec_profile(job).power_intensity);
  const sim::CoalitionProbe probe(spec, fleet, intensities);
  core::OracleShapleyEstimator oracle(probe, /*anchor=*/true);

  sim::PhysicalMachine machine(spec, 77);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i], wl::make_spec_workload(jobs[i], 4242 + i));
    machine.hypervisor().start_vm(id);
  }

  util::RunningStats per_vm_error;
  for (int t = 0; t < 120; ++t) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto approx = vhc.estimate(samples, adjusted);
    const auto exact = oracle.estimate(samples, adjusted);
    for (std::size_t i = 0; i < approx.size(); ++i)
      per_vm_error.add(util::relative_error(approx[i], exact[i], 1.0));
  }
  // Per-VM shares amplify worth-approximation error (they are differences
  // of worths); the paper's 90%-under-5% claim is about the v(S,C)
  // estimates themselves, which bench_fig10 verifies. Here we bound the
  // end-to-end per-VM tracking error.
  EXPECT_LT(per_vm_error.mean(), 0.13);
  EXPECT_LT(per_vm_error.max(), 0.45);
}

TEST(PaperShape, PowerModelAggregateErrorIsLarge) {
  // Fig. 11: summed per-VM model estimates exceed measured power by tens of
  // percent on the 5-VM mix.
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();
  base::TrainingOptions train;
  train.duration_s = 150.0;
  const auto models = base::train_catalogue_models(spec, catalogue, train);
  base::PowerModelEstimator pm(models);

  const std::vector<common::VmConfig> fleet = {
      catalogue[0], catalogue[0], catalogue[1], catalogue[2], catalogue[3]};
  sim::PhysicalMachine machine(spec, 13);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i], std::make_unique<wl::BcFloatLoop>());
    machine.hypervisor().start_vm(id);
  }
  util::RunningStats errors;
  for (int t = 0; t < 60; ++t) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = pm.estimate(samples, adjusted);
    const double total = std::accumulate(phi.begin(), phi.end(), 0.0);
    errors.add((total - adjusted) / adjusted);
  }
  EXPECT_GT(errors.mean(), 0.15);  // large, systematic over-estimation
}

TEST(PaperShape, MonteCarloMatchesExactOnProbeWorths) {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {catalogue[0], catalogue[0],
                                               catalogue[1], catalogue[2]};
  const sim::CoalitionProbe probe(spec, fleet);
  const std::vector<StateVector> states(4, StateVector::cpu_only(0.8));
  const core::WorthFn v = [&](core::Coalition s) {
    return probe.worth(s.mask(), states);
  };
  const auto exact = core::shapley_values(4, v);
  const auto mc = core::monte_carlo_shapley(4, v, {.permutations = 500});
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(mc.values[i], exact[i], 0.25) << "vm " << i;
}

}  // namespace
}  // namespace vmp
