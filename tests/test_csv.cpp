#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace vmp::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("vmp_csv_test_" + std::to_string(::getpid()) + ".csv");

  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CsvTest, RoundTrip) {
  {
    CsvWriter writer(path_, {"t", "power", "error"});
    writer.write_row(std::vector<double>{1.0, 150.5, 0.01});
    writer.write_row(std::vector<double>{2.0, 151.25, -0.02});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  const CsvData data = read_csv(path_);
  ASSERT_EQ(data.columns.size(), 3u);
  EXPECT_EQ(data.columns[1], "power");
  ASSERT_EQ(data.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(data.rows[0][1], 150.5);
  EXPECT_DOUBLE_EQ(data.rows[1][2], -0.02);
}

TEST_F(CsvTest, RowWidthValidation) {
  CsvWriter writer(path_, {"a", "b"});
  EXPECT_THROW(writer.write_row(std::vector<double>{1.0}), std::invalid_argument);
}

TEST_F(CsvTest, EmptyColumnsRejected) {
  EXPECT_THROW(CsvWriter(path_, {}), std::invalid_argument);
}

TEST_F(CsvTest, PrecisionPreserved) {
  {
    CsvWriter writer(path_, {"x"});
    writer.write_row(std::vector<double>{0.123456789012});
  }
  const CsvData data = read_csv(path_);
  EXPECT_NEAR(data.rows[0][0], 0.123456789012, 1e-11);
}

TEST_F(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv(path_.string() + ".nope"), std::runtime_error);
}

TEST_F(CsvTest, NonNumericCellRejected) {
  {
    std::ofstream out(path_);
    out << "a,b\n1.0,oops\n";
  }
  EXPECT_THROW(read_csv(path_), std::runtime_error);
}

TEST_F(CsvTest, RaggedRowRejected) {
  {
    std::ofstream out(path_);
    out << "a,b\n1.0\n";
  }
  EXPECT_THROW(read_csv(path_), std::runtime_error);
}

TEST_F(CsvTest, HeaderOnlyFileHasNoRows) {
  { CsvWriter writer(path_, {"only"}); }
  const CsvData data = read_csv(path_);
  EXPECT_TRUE(data.rows.empty());
  ASSERT_EQ(data.columns.size(), 1u);
}

}  // namespace
}  // namespace vmp::util
