#include "core/vsc_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::core {
namespace {

using common::StateVector;

std::vector<StateVector> one_state(double cpu) {
  return {StateVector::cpu_only(cpu)};
}

TEST(VscTable, ConstructionValidation) {
  EXPECT_THROW(VscTable(0), std::invalid_argument);
  EXPECT_THROW(VscTable(VhcUniverse::kMaxVhcs + 1), std::invalid_argument);
  EXPECT_THROW(VscTable(2, 0.0), std::invalid_argument);
  const VscTable table(2, 0.05);
  EXPECT_EQ(table.num_vhcs(), 2u);
  EXPECT_DOUBLE_EQ(table.resolution(), 0.05);
}

TEST(VscTable, RecordAndLookupExactState) {
  VscTable table(1, 0.01);
  table.record(0b1, one_state(0.50), 6.5);
  EXPECT_EQ(table.total_samples(), 1u);
  const auto hit = table.lookup(0b1, one_state(0.50));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 6.5);
}

TEST(VscTable, QuantizationMergesNearbyStates) {
  VscTable table(1, 0.01);
  table.record(0b1, one_state(0.502), 6.0);   // quantizes to 0.50
  table.record(0b1, one_state(0.498), 8.0);   // quantizes to 0.50
  const auto hit = table.lookup(0b1, one_state(0.5004));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 7.0);  // mean of the matching samples
}

TEST(VscTable, UnobservedStateReturnsNothing) {
  VscTable table(1, 0.01);
  table.record(0b1, one_state(0.50), 6.5);
  EXPECT_FALSE(table.lookup(0b1, one_state(0.80)).has_value());
  EXPECT_FALSE(table.lookup(0b1, one_state(0.52)).has_value());
}

TEST(VscTable, CombosAreIndependent) {
  VscTable table(2, 0.01);
  table.record(0b01, std::vector<StateVector>{StateVector::cpu_only(0.5), StateVector::zero()}, 5.0);
  table.record(0b10, std::vector<StateVector>{StateVector::zero(), StateVector::cpu_only(0.5)}, 9.0);
  EXPECT_FALSE(
      table.lookup(0b01, std::vector<StateVector>{StateVector::zero(), StateVector::cpu_only(0.5)})
          .has_value());
  EXPECT_EQ(table.samples(0b01).size(), 1u);
  EXPECT_EQ(table.samples(0b10).size(), 1u);
  EXPECT_TRUE(table.samples(0b11).empty());
  EXPECT_EQ(table.combos().size(), 2u);
}

TEST(VscTable, RecordValidation) {
  VscTable table(1, 0.01);
  EXPECT_THROW(table.record(0b1, {}, 5.0), std::invalid_argument);
  EXPECT_THROW(table.record(0b10, one_state(0.5), 5.0), std::invalid_argument);
  EXPECT_THROW(table.record(0b1, one_state(0.5), -1.0), std::invalid_argument);
}

TEST(VscTable, LookupValidation) {
  const VscTable table(1, 0.01);
  EXPECT_THROW((void)table.lookup(0b1, {}), std::invalid_argument);
  EXPECT_THROW((void)table.lookup(0b10, one_state(0.5)), std::invalid_argument);
}

TEST(VscTable, SamplesStoreQuantizedStates) {
  VscTable table(1, 0.01);
  table.record(0b1, one_state(0.1234), 3.0);
  const auto& samples = table.samples(0b1);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].vhc_states[0].cpu(), 0.12, 1e-12);
  EXPECT_EQ(samples[0].combo, 0b1u);
}

TEST(VscTable, AggregatedStatesBeyondOneAccepted) {
  // VHC states are sums over VMs and routinely exceed 1.0.
  VscTable table(1, 0.01);
  table.record(0b1, one_state(3.47), 45.0);
  const auto hit = table.lookup(0b1, one_state(3.47));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 45.0);
}

}  // namespace
}  // namespace vmp::core
