#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "common/vm_config.hpp"
#include "sim/dstat.hpp"
#include "workload/primitives.hpp"

namespace vmp::sim {
namespace {

MachineSpec quiet_xeon() {
  MachineSpec spec = xeon_prototype();
  spec.meter_noise_sigma_w = 0.0;
  spec.meter_quantum_w = 0.0;
  spec.affinity_jitter = 0.0;
  return spec;
}

TEST(Runner, ProducesAlignedSeries) {
  PhysicalMachine machine(quiet_xeon(), 1);
  const VmId id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               common::StateVector::cpu_only(0.5)));
  machine.hypervisor().start_vm(id);
  const ScenarioTrace trace = run_scenario(machine, 10.0, 1.0);
  EXPECT_EQ(trace.size(), 10u);
  EXPECT_EQ(trace.true_power.size(), 10u);
  EXPECT_EQ(trace.states.size(), 10u);
  EXPECT_DOUBLE_EQ(trace.measured_power.period(), 1.0);
  // Noiseless meter: measured == true.
  for (std::size_t k = 0; k < trace.size(); ++k)
    EXPECT_DOUBLE_EQ(trace.measured_power[k], trace.true_power[k]);
}

TEST(Runner, TimestampsContinueAcrossRuns) {
  PhysicalMachine machine(quiet_xeon(), 1);
  const ScenarioTrace first = run_scenario(machine, 5.0, 1.0);
  const ScenarioTrace second = run_scenario(machine, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(first.measured_power.time_at(0), 1.0);
  EXPECT_DOUBLE_EQ(second.measured_power.time_at(0), 6.0);
  EXPECT_DOUBLE_EQ(machine.now(), 10.0);
}

TEST(Runner, AdjustedMeasuredDeductsIdleAndClamps) {
  PhysicalMachine machine(quiet_xeon(), 1);
  const ScenarioTrace trace = run_scenario(machine, 5.0, 1.0);
  const auto adjusted = trace.adjusted_measured(machine.idle_power_w());
  for (std::size_t k = 0; k < adjusted.size(); ++k) {
    EXPECT_GE(adjusted[k], 0.0);
    EXPECT_DOUBLE_EQ(adjusted[k], 0.0);  // idle machine
  }
  // Clamping: a huge idle floor cannot produce negative samples.
  const auto clamped = trace.adjusted_measured(1e6);
  for (std::size_t k = 0; k < clamped.size(); ++k)
    EXPECT_DOUBLE_EQ(clamped[k], 0.0);
}

TEST(Runner, Validation) {
  PhysicalMachine machine(quiet_xeon(), 1);
  EXPECT_THROW(run_scenario(machine, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(run_scenario(machine, 10.0, 0.0), std::invalid_argument);
}

TEST(Runner, SubSecondSampling) {
  PhysicalMachine machine(quiet_xeon(), 1);
  const ScenarioTrace trace = run_scenario(machine, 2.0, 0.5);
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_DOUBLE_EQ(trace.measured_power.period(), 0.5);
}

TEST(Dstat, SeriesForTracksOneVm) {
  PhysicalMachine machine(quiet_xeon(), 1);
  const VmId a = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               common::StateVector::cpu_only(0.3)));
  const VmId b = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               common::StateVector::cpu_only(0.8)));
  machine.hypervisor().start_vm(a);
  DstatCollector collector;
  machine.step(1.0);
  collector.sample(machine.hypervisor());
  machine.hypervisor().start_vm(b);
  machine.step(1.0);
  collector.sample(machine.hypervisor());

  const auto series_a = collector.series_for(a);
  const auto series_b = collector.series_for(b);
  ASSERT_EQ(series_a.size(), 2u);
  EXPECT_DOUBLE_EQ(series_a[0].cpu(), 0.3);
  EXPECT_DOUBLE_EQ(series_a[1].cpu(), 0.3);
  // VM b was not running at the first sample -> zero state there.
  EXPECT_DOUBLE_EQ(series_b[0].cpu(), 0.0);
  EXPECT_DOUBLE_EQ(series_b[1].cpu(), 0.8);
}

TEST(Dstat, ClearEmptiesRecords) {
  PhysicalMachine machine(quiet_xeon(), 1);
  DstatCollector collector;
  collector.sample(machine.hypervisor());
  EXPECT_EQ(collector.size(), 1u);
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
}

TEST(PhysicalMachine, RaplTracksMeterWithoutNoise) {
  PhysicalMachine machine(quiet_xeon(), 1);
  const VmId id = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::ConstantWorkload>(
                               common::StateVector::cpu_only(1.0)));
  machine.hypervisor().start_vm(id);
  RaplReader reader(machine.msr());
  double meter_j = 0.0;
  for (int i = 0; i < 30; ++i) {
    const MeterFrame frame = machine.step(1.0);
    meter_j += frame.active_power_w;
  }
  const double pkg_j = reader.energy_since_last_j(RaplDomain::kPackage);
  // Package excludes disk (and the simulator folds everything else in), so
  // it must come within a few percent of, and below, wall energy.
  EXPECT_LT(pkg_j, meter_j);
  EXPECT_GT(pkg_j, 0.9 * meter_j);
}

}  // namespace
}  // namespace vmp::sim
