#include "util/time_series.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::util {
namespace {

TEST(TimeSeries, ConstructionValidation) {
  EXPECT_THROW(TimeSeries(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(TimeSeries(0.0, -1.0), std::invalid_argument);
  const TimeSeries ts(5.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.start(), 5.0);
  EXPECT_DOUBLE_EQ(ts.period(), 2.0);
  EXPECT_TRUE(ts.empty());
}

TEST(TimeSeries, PushAndTimestamps) {
  TimeSeries ts(10.0, 1.0);
  ts.push(1.0);
  ts.push(2.0);
  ts.push(3.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.time_at(0), 10.0);
  EXPECT_DOUBLE_EQ(ts.time_at(2), 12.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1), 2.0);
  EXPECT_THROW(ts.time_at(3), std::out_of_range);
  EXPECT_THROW(ts.value_at(3), std::out_of_range);
}

TEST(TimeSeries, SampleAtZeroOrderHold) {
  TimeSeries ts(0.0, 1.0);
  ts.push(10.0);
  ts.push(20.0);
  ts.push(30.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(0.9), 10.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(1.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.sample_at(100.0), 30.0);  // holds last value
  EXPECT_THROW(ts.sample_at(-0.1), std::out_of_range);
}

TEST(TimeSeries, SampleAtEmptyThrows) {
  TimeSeries ts;
  EXPECT_THROW(ts.sample_at(0.0), std::out_of_range);
}

TEST(TimeSeries, IntegrateTrapezoid) {
  TimeSeries ts(0.0, 1.0);
  ts.push(0.0);
  ts.push(2.0);
  ts.push(2.0);
  // 0->2 over 1 s (area 1) + 2->2 over 1 s (area 2) = 3 value-seconds.
  EXPECT_DOUBLE_EQ(ts.integrate(), 3.0);
}

TEST(TimeSeries, IntegrateDegenerate) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.integrate(), 0.0);
  ts.push(100.0);
  EXPECT_DOUBLE_EQ(ts.integrate(), 0.0);  // single sample spans no time
}

TEST(TimeSeries, SubtractTruncatesToShorter) {
  TimeSeries a(0.0, 1.0), b(0.0, 1.0);
  a.push(10.0);
  a.push(20.0);
  a.push(30.0);
  b.push(1.0);
  b.push(2.0);
  const TimeSeries d = a - b;
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 9.0);
  EXPECT_DOUBLE_EQ(d[1], 18.0);
}

TEST(TimeSeries, SubtractPeriodMismatchThrows) {
  TimeSeries a(0.0, 1.0), b(0.0, 2.0);
  EXPECT_THROW(a - b, std::invalid_argument);
}

TEST(TimeSeries, ShiftedAddsOffset) {
  TimeSeries ts(0.0, 1.0);
  ts.push(140.0);
  ts.push(150.0);
  const TimeSeries adjusted = ts.shifted(-138.0);
  EXPECT_DOUBLE_EQ(adjusted[0], 2.0);
  EXPECT_DOUBLE_EQ(adjusted[1], 12.0);
  EXPECT_DOUBLE_EQ(adjusted.period(), 1.0);
}

TEST(TimeSeries, PowerIntegralIsEnergy) {
  // 100 W for 10 samples at 1 Hz ~ 900 J by trapezoid over 9 intervals.
  TimeSeries power(0.0, 1.0);
  for (int i = 0; i < 10; ++i) power.push(100.0);
  EXPECT_DOUBLE_EQ(power.integrate(), 900.0);
}

}  // namespace
}  // namespace vmp::util
