#include "core/banzhaf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/axioms.hpp"
#include "core/shapley.hpp"
#include "util/rng.hpp"

namespace vmp::core {
namespace {

const WorthFn kTwoVmGame = [](Coalition s) {
  switch (s.size()) {
    case 0: return 0.0;
    case 1: return 13.0;
    default: return 20.0;
  }
};

TEST(Banzhaf, TwoVmGameMatchesShapley) {
  // For 2 players the Banzhaf and Shapley weights coincide (both 1/2).
  const auto beta = banzhaf_values(2, kTwoVmGame);
  EXPECT_NEAR(beta[0], 10.0, 1e-12);
  EXPECT_NEAR(beta[1], 10.0, 1e-12);
}

TEST(Banzhaf, AdditiveGameGivesSingletonWorths) {
  const double w[3] = {3.0, 5.0, 7.0};
  const WorthFn v = [&](Coalition s) {
    double sum = 0.0;
    for (Player i : s.members()) sum += w[i];
    return sum;
  };
  const auto beta = banzhaf_values(3, v);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(beta[i], w[i], 1e-12);
}

TEST(Banzhaf, GenerallyNotEfficient) {
  // The three-player majority game: v = 1 iff |S| >= 2. Shapley gives 1/3
  // each (sums to 1); Banzhaf gives 1/2 each (sums to 3/2).
  const WorthFn majority = [](Coalition s) {
    return s.size() >= 2 ? 1.0 : 0.0;
  };
  const auto beta = banzhaf_values(3, majority);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(beta[i], 0.5, 1e-12);
  const double total = std::accumulate(beta.begin(), beta.end(), 0.0);
  EXPECT_FALSE(check_efficiency(beta, majority(Coalition::grand(3)), 1e-6));
  EXPECT_NEAR(total, 1.5, 1e-12);
}

TEST(Banzhaf, SatisfiesSymmetryAndDummy) {
  util::Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> worth(16);
    for (double& w : worth) w = rng.uniform(0.0, 20.0);
    worth[0] = 0.0;
    // Make player 3 a dummy and players 0, 1 symmetric.
    for (std::size_t mask = 0; mask < 16; ++mask) {
      if (mask & 8u) worth[mask] = worth[mask & ~std::size_t{8}];
    }
    const auto swap01 = [](std::size_t m) {
      const std::size_t b0 = (m >> 0) & 1, b1 = (m >> 1) & 1;
      return (m & ~3u) | (b0 << 1) | (b1 << 0);
    };
    for (std::size_t mask = 0; mask < 16; ++mask) {
      const std::size_t swapped = swap01(mask);
      if (swapped > mask) worth[swapped] = worth[mask];
    }
    const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
    const auto beta = banzhaf_values(4, v);
    EXPECT_NEAR(beta[0], beta[1], 1e-9) << "trial " << trial;
    EXPECT_NEAR(beta[3], 0.0, 1e-12) << "trial " << trial;
  }
}

TEST(NormalizedBanzhaf, HitsTargetTotalButLosesUniqueness) {
  const WorthFn majority = [](Coalition s) {
    return s.size() >= 2 ? 1.0 : 0.0;
  };
  const auto beta = normalized_banzhaf_values(3, majority, 1.0);
  EXPECT_NEAR(std::accumulate(beta.begin(), beta.end(), 0.0), 1.0, 1e-12);
  // Here normalization lands on Shapley (fully symmetric game)...
  const auto phi = shapley_values(3, majority);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(beta[i], phi[i], 1e-12);
  // ...but in general it does not: an asymmetric game separates them.
  const WorthFn veto = [](Coalition s) {
    // Player 0 is a veto player; worth 1 iff 0 present with anyone else.
    return s.contains(0) && s.size() >= 2 ? 1.0 : 0.0;
  };
  const auto nb = normalized_banzhaf_values(3, veto, 1.0);
  const auto sv = shapley_values(3, veto);
  EXPECT_GT(std::abs(nb[0] - sv[0]), 0.01);
}

TEST(NormalizedBanzhaf, ZeroGameSplitsEqually) {
  const WorthFn zero = [](Coalition) { return 0.0; };
  const auto beta = normalized_banzhaf_values(4, zero, 12.0);
  for (double b : beta) EXPECT_DOUBLE_EQ(b, 3.0);
}

TEST(Banzhaf, Validation) {
  EXPECT_THROW(banzhaf_values(0, kTwoVmGame), std::invalid_argument);
  EXPECT_THROW(banzhaf_values(kMaxPlayers + 1, kTwoVmGame),
               std::invalid_argument);
}

}  // namespace
}  // namespace vmp::core
