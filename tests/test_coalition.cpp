#include "core/coalition.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace vmp::core {
namespace {

TEST(Coalition, EmptyAndGrand) {
  EXPECT_TRUE(Coalition::empty().is_empty());
  EXPECT_EQ(Coalition::empty().size(), 0u);
  const Coalition grand = Coalition::grand(5);
  EXPECT_EQ(grand.size(), 5u);
  EXPECT_EQ(grand.mask(), 0b11111u);
  EXPECT_TRUE(Coalition::grand(0).is_empty());
  EXPECT_THROW(Coalition::grand(kMaxPlayers + 1), std::invalid_argument);
}

TEST(Coalition, SingleAndContains) {
  const Coalition s = Coalition::single(3);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(2));
  // Out-of-range player indices are a caller-contract violation now
  // (assert-in-debug, branch-free in release); only valid indices are legal.
  EXPECT_FALSE(s.contains(kMaxPlayers - 1));
  EXPECT_THROW(Coalition::single(kMaxPlayers), std::invalid_argument);
}

TEST(Coalition, WithWithout) {
  Coalition s = Coalition::empty().with(1).with(4);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(4));
  s = s.without(1);
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.without(1), s);  // removing twice is a no-op
  EXPECT_EQ(s.with(4), s);     // adding twice is a no-op
}

TEST(Coalition, SetAlgebra) {
  const Coalition a{0b0110};
  const Coalition b{0b0011};
  EXPECT_EQ(a.united(b).mask(), 0b0111u);
  EXPECT_EQ(a.intersected(b).mask(), 0b0010u);
  EXPECT_TRUE(Coalition{0b0010}.is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(b));
  EXPECT_TRUE(Coalition::empty().is_subset_of(a));
}

TEST(Coalition, MembersAscending) {
  const Coalition s{0b10101};
  const auto members = s.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], 0u);
  EXPECT_EQ(members[1], 2u);
  EXPECT_EQ(members[2], 4u);
  EXPECT_TRUE(Coalition::empty().members().empty());
}

TEST(ForEachSubset, VisitsAllSubsetsExactlyOnce) {
  const Coalition of{0b1011};  // 3 members -> 8 subsets
  std::set<Coalition::Mask> seen;
  for_each_subset(of, [&](Coalition s) {
    EXPECT_TRUE(s.is_subset_of(of));
    EXPECT_TRUE(seen.insert(s.mask()).second) << "duplicate " << s.mask();
  });
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_TRUE(seen.count(0));          // empty included
  EXPECT_TRUE(seen.count(of.mask()));  // full included
}

TEST(ForEachSubset, EmptyCoalitionVisitsOnlyEmpty) {
  int calls = 0;
  for_each_subset(Coalition::empty(), [&](Coalition s) {
    EXPECT_TRUE(s.is_empty());
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(AllSubsets, CountsMatch) {
  EXPECT_EQ(all_subsets(Coalition::grand(4)).size(), 16u);
  EXPECT_EQ(all_subsets(Coalition::empty()).size(), 1u);
  EXPECT_THROW(all_subsets(Coalition::grand(25)), std::invalid_argument);
}

TEST(Coalition, NonContiguousPlayers) {
  // Coalitions need not be prefixes: {1, 3} from a 4-player game.
  const Coalition s = Coalition::single(1).united(Coalition::single(3));
  int count = 0;
  for_each_subset(s, [&](Coalition) { ++count; });
  EXPECT_EQ(count, 4);
}

}  // namespace
}  // namespace vmp::core
