#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace vmp::obs {
namespace {

/// Tracker with a stepping fake clock (seconds granularity).
struct Fixture {
  std::uint64_t now_s = 1000;
  SloOptions options;
  Fixture() {
    options.latency_threshold_s = 0.050;
    options.latency_objective = 0.99;
    options.availability_objective = 0.999;
    options.fast_window_s = 300;
    options.slow_window_s = 3600;
    options.clock = [this] { return now_s; };
  }
};

TEST(SloTracker, EmptyWindowsAreCompliantWithZeroBurn) {
  Fixture fx;
  SloTracker tracker(fx.options);
  const auto health = tracker.health();
  EXPECT_EQ(health.recorded, 0u);
  EXPECT_DOUBLE_EQ(health.latency_fast.compliance, 1.0);
  EXPECT_DOUBLE_EQ(health.latency_fast.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(health.availability_slow.compliance, 1.0);
}

TEST(SloTracker, LatencyBreachesBurnTheLatencyBudgetOnly) {
  Fixture fx;
  SloTracker tracker(fx.options);
  for (int i = 0; i < 99; ++i) tracker.record(0.001, false);
  tracker.record(0.200, false);  // slow but successful.
  const auto health = tracker.health();
  EXPECT_EQ(health.latency_fast.total, 100u);
  EXPECT_EQ(health.latency_fast.bad, 1u);
  EXPECT_DOUBLE_EQ(health.latency_fast.compliance, 0.99);
  // 1% bad over a 1% budget: burning exactly as provisioned.
  EXPECT_NEAR(health.latency_fast.burn_rate, 1.0, 1e-9);
  EXPECT_EQ(health.availability_fast.bad, 0u);
  EXPECT_DOUBLE_EQ(health.availability_fast.compliance, 1.0);
}

TEST(SloTracker, ErrorsCountAgainstBothObjectives) {
  // A timeout is both slow and failed; hiding it from the latency SLO would
  // flatter the tail exactly when it matters.
  Fixture fx;
  SloTracker tracker(fx.options);
  for (int i = 0; i < 9; ++i) tracker.record(0.001, false);
  tracker.record(0.250, true);
  const auto health = tracker.health();
  EXPECT_EQ(health.latency_fast.bad, 1u);
  EXPECT_EQ(health.availability_fast.bad, 1u);
  // 10% failures against a 0.1% budget: burn 100.
  EXPECT_NEAR(health.availability_fast.burn_rate, 100.0, 1e-6);
}

TEST(SloTracker, FastWindowForgetsWhatTheSlowWindowRemembers) {
  Fixture fx;
  SloTracker tracker(fx.options);
  for (int i = 0; i < 50; ++i) tracker.record(0.500, true);  // incident.
  fx.now_s += 600;  // beyond the 300 s fast window, inside the slow one.
  tracker.record(0.001, false);
  const auto health = tracker.health();
  EXPECT_EQ(health.latency_fast.total, 1u);
  EXPECT_EQ(health.latency_fast.bad, 0u);
  EXPECT_DOUBLE_EQ(health.latency_fast.compliance, 1.0);
  EXPECT_EQ(health.latency_slow.total, 51u);
  EXPECT_EQ(health.latency_slow.bad, 50u);
  EXPECT_LT(health.latency_slow.compliance, 0.05);
}

TEST(SloTracker, OldSlotsAreReclaimedAfterAFullWindowLap) {
  Fixture fx;
  SloTracker tracker(fx.options);
  tracker.record(0.500, true);
  fx.now_s += 4000;  // past even the slow window.
  tracker.record(0.001, false);
  const auto health = tracker.health();
  EXPECT_EQ(health.latency_slow.total, 1u);
  EXPECT_EQ(health.latency_slow.bad, 0u);
  EXPECT_EQ(health.recorded, 2u);  // lifetime counter never forgets.
}

TEST(SloTracker, RecordsSpreadAcrossSlotsInsideTheWindowAllCount) {
  Fixture fx;
  SloTracker tracker(fx.options);
  // Fast window 300 s over 60 slots = 5 s slots; touch many distinct slots.
  for (int i = 0; i < 30; ++i) {
    tracker.record(0.001, false);
    fx.now_s += 5;
  }
  const auto health = tracker.health();
  EXPECT_EQ(health.latency_fast.total, 30u);
}

TEST(SloTracker, PublishExportsGaugesAndCounters) {
  Fixture fx;
  MetricsRegistry metrics;
  fx.options.metrics = &metrics;
  SloTracker tracker(fx.options);
  for (int i = 0; i < 99; ++i) tracker.record(0.001, false);
  tracker.record(0.200, true);
  tracker.publish();
  const std::string dump = metrics.to_prometheus();
  EXPECT_NE(dump.find("vmpower_slo_requests_total 100"), std::string::npos);
  EXPECT_NE(dump.find("vmpower_slo_latency_breaches_total 1"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_slo_errors_total 1"), std::string::npos);
  EXPECT_NE(dump.find("vmpower_slo_compliance{objective=\"latency\","
                      "window=\"fast\"} 0.99"),
            std::string::npos);
  EXPECT_NE(dump.find("vmpower_slo_burn_rate{objective=\"availability\","
                      "window=\"slow\"}"),
            std::string::npos);
}

TEST(SloTracker, TextRenderingCarriesEveryCell) {
  Fixture fx;
  SloTracker tracker(fx.options);
  tracker.record(0.001, false);
  const std::string text = tracker.to_text();
  EXPECT_NE(text.find("slo latency window=fast"), std::string::npos);
  EXPECT_NE(text.find("slo latency window=slow"), std::string::npos);
  EXPECT_NE(text.find("slo availability window=fast"), std::string::npos);
  EXPECT_NE(text.find("slo availability window=slow"), std::string::npos);
  EXPECT_NE(text.find("total=1"), std::string::npos);
  EXPECT_NE(text.find("burn="), std::string::npos);
}

TEST(SloTracker, ValidatesOptions) {
  Fixture fx;
  fx.options.fast_window_s = 0;
  EXPECT_THROW(SloTracker{fx.options}, std::invalid_argument);
  Fixture fx2;
  fx2.options.latency_objective = 1.0;  // zero error budget divides by zero.
  EXPECT_THROW(SloTracker{fx2.options}, std::invalid_argument);
}

}  // namespace
}  // namespace vmp::obs
