#include "sim/power_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::sim {
namespace {

MachineSpec quiet_xeon() {
  MachineSpec spec = xeon_prototype();
  spec.meter_noise_sigma_w = 0.0;
  spec.meter_quantum_w = 0.0;
  spec.affinity_jitter = 0.0;
  return spec;
}

std::vector<VcpuDemand> one_vcpu_per_vm(std::size_t n, double util,
                                        double intensity = 1.0) {
  std::vector<VcpuDemand> demands;
  for (std::size_t i = 0; i < n; ++i) demands.push_back({i, util, intensity});
  return demands;
}

TEST(ComputePower, IdleMachineDrawsIdleFloor) {
  const MachineSpec spec = quiet_xeon();
  const Placement empty(spec.topology.logical_cpus());
  const PowerBreakdown p = compute_power(spec, empty, {});
  EXPECT_DOUBLE_EQ(p.total(), spec.idle_power_w);
  EXPECT_DOUBLE_EQ(p.adjusted(), 0.0);
}

TEST(ComputePower, SingleThreadLinearInLoad) {
  const MachineSpec spec = quiet_xeon();
  for (double u : {0.25, 0.5, 1.0}) {
    const Placement p =
        place(spec.topology, one_vcpu_per_vm(1, u), PlacementMode::kSpread);
    const std::vector<VmLoad> loads = {{u, 0.0, 0.0}};
    const PowerBreakdown power = compute_power(spec, p, loads);
    EXPECT_NEAR(power.cpu_dynamic, spec.thread_full_power_w * u, 1e-12);
  }
}

TEST(ComputePower, SiblingContentionIsSubAdditive) {
  // The paper's Sec. III phenomenon: the second sibling thread adds only
  // (1 - gamma) of its nominal power.
  const MachineSpec spec = quiet_xeon();
  const auto demands = one_vcpu_per_vm(2, 1.0);
  const Placement packed = place(spec.topology, demands, PlacementMode::kPack);
  const std::vector<VmLoad> loads = {{1.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  const PowerBreakdown p = compute_power(spec, packed, loads);
  const double expected =
      spec.thread_full_power_w * (2.0 - spec.smt_contention);
  EXPECT_NEAR(p.cpu_dynamic, expected, 1e-12);

  const Placement spreaded = place(spec.topology, demands, PlacementMode::kSpread);
  const PowerBreakdown q = compute_power(spec, spreaded, loads);
  EXPECT_NEAR(q.cpu_dynamic, 2.0 * spec.thread_full_power_w, 1e-12);
  EXPECT_LT(p.cpu_dynamic, q.cpu_dynamic);
}

TEST(ComputePower, ContentionScalesWithOverlapOnly) {
  // Overlap is min(e1, e2): an idle sibling costs nothing extra.
  const MachineSpec spec = quiet_xeon();
  const std::vector<VcpuDemand> demands = {{0, 1.0, 1.0}, {1, 0.3, 1.0}};
  const Placement packed = place(spec.topology, demands, PlacementMode::kPack);
  const PowerBreakdown p = compute_power(
      spec, packed, std::vector<VmLoad>{{1.0, 0, 0}, {0.3, 0, 0}});
  const double expected =
      spec.thread_full_power_w * (1.3 - spec.smt_contention * 0.3);
  EXPECT_NEAR(p.cpu_dynamic, expected, 1e-12);
}

TEST(ComputePower, IntensityScalesThreadPower) {
  const MachineSpec spec = quiet_xeon();
  const Placement p = place(spec.topology, one_vcpu_per_vm(1, 1.0, 1.1),
                            PlacementMode::kSpread);
  const PowerBreakdown power =
      compute_power(spec, p, std::vector<VmLoad>{{1.1, 0, 0}});
  EXPECT_NEAR(power.cpu_dynamic, 1.1 * spec.thread_full_power_w, 1e-12);
}

TEST(ComputePower, LlcPenaltyBetweenDistinctVmsOnly) {
  MachineSpec spec = quiet_xeon();
  spec.llc_contention_w = 0.5;
  const Placement p = place(spec.topology, one_vcpu_per_vm(2, 1.0),
                            PlacementMode::kSpread);
  // One VM with demand 2.0 has no pair -> no penalty.
  const PowerBreakdown solo =
      compute_power(spec, p, std::vector<VmLoad>{{2.0, 0, 0}});
  EXPECT_DOUBLE_EQ(solo.llc_penalty, 0.0);
  // Two VMs with demands 1.0 each -> penalty 0.5 * min(1,1).
  const PowerBreakdown pair =
      compute_power(spec, p, std::vector<VmLoad>{{1.0, 0, 0}, {1.0, 0, 0}});
  EXPECT_NEAR(pair.llc_penalty, 0.5, 1e-12);
}

TEST(ComputePower, LlcPenaltyCapped) {
  MachineSpec spec = quiet_xeon();
  spec.llc_contention_w = 1000.0;  // absurd coupling
  const Placement p = place(spec.topology, one_vcpu_per_vm(2, 1.0),
                            PlacementMode::kSpread);
  const PowerBreakdown power =
      compute_power(spec, p, std::vector<VmLoad>{{1.0, 0, 0}, {1.0, 0, 0}});
  EXPECT_LE(power.llc_penalty, 0.25 * power.cpu_dynamic + 1e-12);
  EXPECT_GT(power.total(), spec.idle_power_w);  // never below idle
}

TEST(ComputePower, MemoryAndDiskLinearAndCapped) {
  const MachineSpec spec = quiet_xeon();
  const Placement empty(spec.topology.logical_cpus());
  // Half the host DRAM resident -> half the DRAM power.
  const PowerBreakdown half_mem = compute_power(
      spec, empty,
      std::vector<VmLoad>{{0.0, spec.memory_mb / 2.0, 0.0}});
  EXPECT_NEAR(half_mem.memory, spec.memory_power_w / 2.0, 1e-9);
  // Oversubscribed DRAM accounting saturates at the device maximum.
  const PowerBreakdown over_mem = compute_power(
      spec, empty, std::vector<VmLoad>{{0.0, spec.memory_mb * 3.0, 0.0}});
  EXPECT_DOUBLE_EQ(over_mem.memory, spec.memory_power_w);
  // Disk saturates likewise.
  const PowerBreakdown disk = compute_power(
      spec, empty, std::vector<VmLoad>{{0.0, 0.0, 0.7}, {0.0, 0.0, 0.7}});
  EXPECT_DOUBLE_EQ(disk.disk, spec.disk_power_w);
}

TEST(ComputePower, PlacementSizeValidated) {
  const MachineSpec spec = quiet_xeon();
  const Placement wrong(3);
  EXPECT_THROW(compute_power(spec, wrong, {}), std::invalid_argument);
}

TEST(BlendedPower, InterpolatesBetweenModes) {
  const MachineSpec spec = quiet_xeon();
  const auto demands = one_vcpu_per_vm(2, 1.0);
  const std::vector<VmLoad> loads = {{1.0, 0, 0}, {1.0, 0, 0}};
  const PowerBreakdown at0 = blended_power(spec, demands, loads, 0.0);
  const PowerBreakdown at1 = blended_power(spec, demands, loads, 1.0);
  const PowerBreakdown mid = blended_power(spec, demands, loads, 0.5);
  EXPECT_NEAR(mid.cpu_dynamic, 0.5 * (at0.cpu_dynamic + at1.cpu_dynamic), 1e-12);
  EXPECT_GT(at0.cpu_dynamic, at1.cpu_dynamic);  // spread draws more
  EXPECT_THROW(blended_power(spec, demands, loads, 1.5), std::invalid_argument);
}

TEST(ExpectedPower, UsesSpecAffinity) {
  MachineSpec spec = quiet_xeon();
  spec.pack_affinity = 0.25;
  const auto demands = one_vcpu_per_vm(2, 1.0);
  const std::vector<VmLoad> loads = {{1.0, 0, 0}, {1.0, 0, 0}};
  const PowerBreakdown expected = expected_power(spec, demands, loads);
  const PowerBreakdown manual = blended_power(spec, demands, loads, 0.25);
  EXPECT_DOUBLE_EQ(expected.total(), manual.total());
}

TEST(PowerBreakdown, TotalAndAdjustedConsistent) {
  PowerBreakdown p;
  p.idle = 138.0;
  p.cpu_dynamic = 20.0;
  p.llc_penalty = 1.0;
  p.memory = 2.0;
  p.disk = 3.0;
  EXPECT_DOUBLE_EQ(p.total(), 162.0);
  EXPECT_DOUBLE_EQ(p.adjusted(), 24.0);
}

TEST(MachineSpec, PresetsValid) {
  EXPECT_NO_THROW(xeon_prototype().validate());
  EXPECT_NO_THROW(pentium_desktop().validate());
  EXPECT_EQ(xeon_prototype().topology.logical_cpus(), 16u);
  // SMT gamma plus the LLC coupling reproduce the paper's 46.15 %.
  EXPECT_NEAR(xeon_prototype().smt_contention, 0.4425, 1e-9);
  EXPECT_NEAR(pentium_desktop().smt_contention, 0.2355, 1e-9);
}

TEST(MachineSpec, ValidationCatchesBadParameters) {
  MachineSpec spec = xeon_prototype();
  spec.smt_contention = 1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = xeon_prototype();
  spec.thread_full_power_w = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = xeon_prototype();
  spec.pack_affinity = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = xeon_prototype();
  spec.idle_power_w = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::sim
