#include "core/axioms.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/shapley.hpp"
#include "util/rng.hpp"

namespace vmp::core {
namespace {

// The paper's two-VM game: singletons 13 W, grand 20 W.
const WorthFn kTwoVmGame = [](Coalition s) {
  switch (s.size()) {
    case 0: return 0.0;
    case 1: return 13.0;
    default: return 20.0;
  }
};

TEST(Efficiency, GapAndCheck) {
  const std::vector<double> exact = {10.0, 10.0};
  EXPECT_TRUE(check_efficiency(exact, 20.0));
  EXPECT_DOUBLE_EQ(efficiency_gap(exact, 20.0), 0.0);
  // The power-model baseline's allocation (13 + 13) fails by +6 (Table III).
  const std::vector<double> power_model = {13.0, 13.0};
  EXPECT_FALSE(check_efficiency(power_model, 20.0, 1e-6));
  EXPECT_DOUBLE_EQ(efficiency_gap(power_model, 20.0), 6.0);
}

TEST(Symmetry, DetectsSymmetricPlayers) {
  EXPECT_TRUE(players_symmetric(2, kTwoVmGame, 0, 1));
  EXPECT_TRUE(players_symmetric(2, kTwoVmGame, 0, 0));
  const auto pairs = symmetric_pairs(2, kTwoVmGame);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(Player{0}, Player{1}));
}

TEST(Symmetry, AsymmetricGameHasNoPairs) {
  const WorthFn v = [](Coalition s) {
    return s.contains(0) ? 10.0 : (s.is_empty() ? 0.0 : 1.0);
  };
  EXPECT_FALSE(players_symmetric(2, v, 0, 1));
  EXPECT_TRUE(symmetric_pairs(2, v).empty());
}

TEST(Symmetry, CheckAllocations) {
  // Shapley's 10/10 satisfies Symmetry; marginal's 13/7 violates it.
  EXPECT_TRUE(check_symmetry(2, kTwoVmGame, std::vector<double>{10.0, 10.0}));
  EXPECT_FALSE(check_symmetry(2, kTwoVmGame, std::vector<double>{13.0, 7.0}));
  EXPECT_THROW(check_symmetry(2, kTwoVmGame, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Dummy, DetectsAndChecks) {
  const WorthFn v = [](Coalition s) { return s.contains(0) ? 10.0 : 0.0; };
  EXPECT_TRUE(player_is_dummy(2, v, 1));
  EXPECT_FALSE(player_is_dummy(2, v, 0));
  EXPECT_TRUE(check_dummy(2, v, std::vector<double>{10.0, 0.0}));
  // A power model always charging the idle VM violates Dummy (Sec. IV-C).
  EXPECT_FALSE(check_dummy(2, v, std::vector<double>{8.0, 2.0}));
}

TEST(Dummy, NoDummyInStrictlyContributingGame) {
  EXPECT_FALSE(player_is_dummy(2, kTwoVmGame, 0));
  EXPECT_FALSE(player_is_dummy(2, kTwoVmGame, 1));
}

TEST(Additivity, HoldsForShapley) {
  const WorthFn u = kTwoVmGame;
  const WorthFn w = [](Coalition s) { return 2.0 * s.size(); };
  EXPECT_TRUE(check_additivity(2, u, w));
}

TEST(Additivity, RandomGamePairs) {
  util::Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> wu(16), ww(16);
    for (double& x : wu) x = rng.uniform(0.0, 10.0);
    for (double& x : ww) x = rng.uniform(0.0, 10.0);
    wu[0] = ww[0] = 0.0;
    const WorthFn u = [&](Coalition s) { return wu[s.mask()]; };
    const WorthFn w = [&](Coalition s) { return ww[s.mask()]; };
    EXPECT_TRUE(check_additivity(4, u, w, 1e-9)) << "trial " << trial;
  }
}

TEST(EvaluateAxioms, ShapleyPassesAllOnPaperGame) {
  const auto phi = shapley_values(2, kTwoVmGame);
  const AxiomReport report = evaluate_axioms(2, kTwoVmGame, phi);
  EXPECT_TRUE(report.efficiency);
  EXPECT_TRUE(report.symmetry);
  EXPECT_TRUE(report.dummy);
  EXPECT_NEAR(report.efficiency_gap, 0.0, 1e-9);
}

TEST(EvaluateAxioms, BaselinesFailTheExpectedAxioms) {
  // Table III: marginal contribution is efficient but unfair; the power
  // model is fair but inefficient.
  const AxiomReport marginal =
      evaluate_axioms(2, kTwoVmGame, std::vector<double>{13.0, 7.0});
  EXPECT_TRUE(marginal.efficiency);
  EXPECT_FALSE(marginal.symmetry);

  const AxiomReport power_model =
      evaluate_axioms(2, kTwoVmGame, std::vector<double>{13.0, 13.0});
  EXPECT_FALSE(power_model.efficiency);
  EXPECT_TRUE(power_model.symmetry);
  EXPECT_NEAR(power_model.efficiency_gap, 6.0, 1e-12);
}

TEST(Axioms, InputValidation) {
  EXPECT_THROW(players_symmetric(0, kTwoVmGame, 0, 1), std::invalid_argument);
  EXPECT_THROW(players_symmetric(2, kTwoVmGame, 2, 0), std::invalid_argument);
  EXPECT_THROW(player_is_dummy(2, kTwoVmGame, 2), std::invalid_argument);
  EXPECT_THROW(check_dummy(2, kTwoVmGame, std::vector<double>{1.0}),
               std::invalid_argument);
}

// Property: Shapley allocations of random games always pass all axioms.
class AxiomsOnRandomGames : public ::testing::TestWithParam<int> {};

TEST_P(AxiomsOnRandomGames, ShapleySatisfiesAllFour) {
  util::Rng rng(GetParam() * 104729);
  const std::size_t n = 2 + rng.uniform_u64(4);
  std::vector<double> worth(std::size_t{1} << n);
  for (double& w : worth) w = rng.uniform(0.0, 30.0);
  worth[0] = 0.0;
  // Force one dummy player by construction: player 0 never changes worth.
  for (std::size_t mask = 0; mask < worth.size(); ++mask)
    if (mask & 1u) worth[mask] = worth[mask & ~std::size_t{1}];
  const WorthFn v = [&](Coalition s) { return worth[s.mask()]; };
  const auto phi = shapley_values(n, v);
  const AxiomReport report = evaluate_axioms(n, v, phi, 1e-7);
  EXPECT_TRUE(report.efficiency);
  EXPECT_TRUE(report.symmetry);
  EXPECT_TRUE(report.dummy);
  EXPECT_NEAR(phi[0], 0.0, 1e-9);  // the constructed dummy
}

INSTANTIATE_TEST_SUITE_P(Seeds, AxiomsOnRandomGames, ::testing::Range(1, 16));

}  // namespace
}  // namespace vmp::core
