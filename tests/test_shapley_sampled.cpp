#include "core/shapley_sampled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/state_vector.hpp"
#include "core/estimator.hpp"
#include "core/shapley.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace vmp::core {
namespace {

using common::StateVector;

// --- Kernel tier ------------------------------------------------------------

// A fully-materialized random game over n players, reusable as both the
// sampled kernel's u64-mask worth and the exact solver's Coalition worth.
std::vector<double> random_game(std::size_t n, std::uint64_t seed) {
  std::vector<double> table(std::size_t{1} << n);
  util::Rng rng(seed);
  for (double& v : table) v = rng.uniform(0.0, 10.0);
  table[0] = 0.0;
  return table;
}

SampledWorthFn table_worth(const std::vector<double>& table) {
  return [&table](std::uint64_t members) {
    return table[static_cast<std::size_t>(members)];
  };
}

TEST(SampledShapley, TinyGamesAreSolvedExactlyByTheWarmUp) {
  SampledShapleyOptions options;
  for (std::size_t n = 1; n <= 3; ++n) {
    const auto table = random_game(n, 11 + n);
    const double grand = table.back();
    const auto exact = shapley_values(
        n, [&](Coalition s) { return table[s.mask()]; });
    const auto result =
        sampled_shapley_values(n, table_worth(table), grand, options);
    ASSERT_EQ(result.phi.size(), n);
    EXPECT_STREQ(to_string(result.stopped_by), "exact");
    EXPECT_EQ(result.rounds, 0u);
    EXPECT_EQ(result.max_halfwidth_w, 0.0);
    // Warm-up evaluations only: v(∅), singletons (n>=2), co-singletons
    // (n>=3); the grand worth is anchored, never evaluated.
    const std::size_t expected = 1 + (n >= 2 ? n : 0) + (n >= 3 ? n : 0);
    EXPECT_EQ(result.worth_evaluations, expected) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(result.phi[i], exact[i], 1e-12) << "n=" << n << " i=" << i;
  }
}

TEST(SampledShapley, EstimateFallsInsideItsOwnConfidenceInterval) {
  constexpr std::size_t n = 10;
  const auto table = random_game(n, 42);
  const double grand = table.back();
  const auto exact =
      shapley_values(n, [&](Coalition s) { return table[s.mask()]; });

  SampledShapleyOptions options;
  options.seed = 7;
  options.max_samples = 4000;
  const auto result = sampled_shapley_values(n, table_worth(table), grand,
                                             options);
  EXPECT_STREQ(to_string(result.stopped_by), "max_samples");
  EXPECT_LE(result.worth_evaluations, options.max_samples);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_EQ(result.unseen_strata, 0u);
  // The reported 3-sigma interval must cover the exact value. The estimate
  // carries the uniform efficiency shift, which is itself bounded by the
  // summed half-widths spread over n players.
  const double shift_slack = result.sum_halfwidth_w / n;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LE(std::abs(result.phi[i] - exact[i]),
              result.halfwidth_w[i] + shift_slack)
        << "player " << i;
  // Pre-shift gap inside the conservative bound (the invariant the fleet
  // monitor watches), and post-shift efficiency exact.
  EXPECT_LE(result.efficiency_gap_w, result.sum_halfwidth_w);
  EXPECT_NEAR(std::accumulate(result.phi.begin(), result.phi.end(), 0.0),
              grand, 1e-9);
}

TEST(SampledShapley, ByteIdenticalAtAnyThreadCount) {
  constexpr std::size_t n = 12;
  const auto table = random_game(n, 5);
  SampledShapleyOptions options;
  options.seed = 99;
  options.max_samples = 1500;

  const auto reference =
      sampled_shapley_values(n, table_worth(table), table.back(), options);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}}) {
    util::ThreadPool pool(threads);
    const auto parallel = sampled_shapley_values(
        n, table_worth(table), table.back(), options, &pool);
    ASSERT_EQ(parallel.phi.size(), reference.phi.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(parallel.phi[i], reference.phi[i]) << "threads=" << threads;
      EXPECT_EQ(parallel.halfwidth_w[i], reference.halfwidth_w[i])
          << "threads=" << threads;
    }
    EXPECT_EQ(parallel.worth_evaluations, reference.worth_evaluations);
    EXPECT_EQ(parallel.rounds, reference.rounds);
  }
}

TEST(SampledShapley, AnytimeStopRulesFireAsConfigured) {
  constexpr std::size_t n = 8;
  const auto table = random_game(n, 3);
  const double grand = table.back();

  // Half-width target with an unlimited sample budget.
  SampledShapleyOptions by_halfwidth;
  by_halfwidth.max_samples = 0;
  by_halfwidth.target_halfwidth_w = 2.0;
  const auto hw =
      sampled_shapley_values(n, table_worth(table), grand, by_halfwidth);
  EXPECT_STREQ(to_string(hw.stopped_by), "halfwidth");
  EXPECT_LE(hw.max_halfwidth_w, by_halfwidth.target_halfwidth_w);

  // A wall-clock budget that has always elapsed by the first check.
  SampledShapleyOptions by_budget;
  by_budget.max_samples = 0;
  by_budget.budget_ns = 1;
  const auto budget =
      sampled_shapley_values(n, table_worth(table), grand, by_budget);
  EXPECT_STREQ(to_string(budget.stopped_by), "budget");
  // The deterministic warm-up always completes, budget or not.
  EXPECT_GE(budget.worth_evaluations, 1 + 2 * n);

  // An evaluation budget below one round still runs the warm-up, then stops.
  SampledShapleyOptions by_samples;
  by_samples.max_samples = 1 + 2 * n;
  const auto samples =
      sampled_shapley_values(n, table_worth(table), grand, by_samples);
  EXPECT_STREQ(to_string(samples.stopped_by), "max_samples");
  EXPECT_EQ(samples.worth_evaluations, by_samples.max_samples);
  EXPECT_EQ(samples.rounds, 0u);
  // With zero middle draws every middle stratum is finalized from the
  // proportional-fallback path and counted.
  EXPECT_GT(samples.unseen_strata, 0u);
  // Efficiency still holds exactly: the shift normalizes any fallback.
  EXPECT_NEAR(std::accumulate(samples.phi.begin(), samples.phi.end(), 0.0),
              grand, 1e-9);
}

TEST(SampledShapley, SixtyFourPlayerAdditiveGameInBoundedTime) {
  constexpr std::size_t n = 64;  // the kMaxSampledPlayers ceiling itself.
  const auto weight = [](std::size_t i) {
    return 0.1 * static_cast<double>(i + 1);
  };
  const SampledWorthFn worth = [&](std::uint64_t members) {
    double sum = 0.0;
    for (std::uint64_t m = members; m != 0; m &= m - 1)
      sum += weight(static_cast<std::size_t>(std::countr_zero(m)));
    return sum;
  };
  double grand = 0.0;
  for (std::size_t i = 0; i < n; ++i) grand += weight(i);

  SampledShapleyOptions options;
  options.seed = 17;
  options.max_samples = 20'000;
  util::ThreadPool pool(4);
  const auto result = sampled_shapley_values(n, worth, grand, options, &pool);
  EXPECT_STREQ(to_string(result.stopped_by), "max_samples");
  EXPECT_LE(result.worth_evaluations, options.max_samples);
  EXPECT_NEAR(std::accumulate(result.phi.begin(), result.phi.end(), 0.0),
              grand, 1e-8);
  // Additive game: φ_i is exactly the weight; the CI must cover it.
  const double shift_slack = result.sum_halfwidth_w / n;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LE(std::abs(result.phi[i] - weight(i)),
              result.halfwidth_w[i] + shift_slack)
        << "player " << i;
}

TEST(SampledShapley, InputValidation) {
  const SampledWorthFn worth = [](std::uint64_t) { return 0.0; };
  SampledShapleyOptions options;
  EXPECT_THROW(sampled_shapley_values(0, worth, 0.0, options),
               std::invalid_argument);
  EXPECT_THROW(
      sampled_shapley_values(kMaxSampledPlayers + 1, worth, 0.0, options),
      std::invalid_argument);
  EXPECT_THROW(sampled_shapley_values(4, SampledWorthFn{}, 0.0, options),
               std::invalid_argument);
  SampledShapleyOptions no_stop;
  no_stop.max_samples = 0;
  no_stop.target_halfwidth_w = 0.0;
  no_stop.budget_ns = 0;
  EXPECT_THROW(sampled_shapley_values(4, worth, 0.0, no_stop),
               std::invalid_argument);
}

// --- Estimator tier ---------------------------------------------------------

// The exact single-VHC linear law power = w * aggregated cpu (the same
// fixture test_estimator.cpp uses); distinct cpu utilizations make distinct
// players under detect_symmetry's bit-identical-state rule.
VhcLinearApprox exact_linear_approx(double w_cpu) {
  VscTable table(1, 0.01);
  util::Rng rng(1);
  for (int k = 0; k < 200; ++k) {
    const double cpu = rng.uniform(0.0, 2.0);
    table.record(0b1, {{StateVector::cpu_only(cpu)}}, w_cpu * cpu);
  }
  return VhcLinearApprox::fit(table);
}

// `distinct` VMs with pairwise-distinct states plus `duplicated` extra VMs
// replaying the first state. Returns the samples and the summed cpu.
std::vector<VmSample> mixed_fleet(std::size_t distinct, std::size_t duplicated,
                                  double* total_cpu = nullptr) {
  std::vector<VmSample> vms;
  double sum = 0.0;
  for (std::size_t i = 0; i < distinct + duplicated; ++i) {
    const double cpu =
        i < distinct ? 0.3 + 0.017 * static_cast<double>(i) : 0.3;
    vms.push_back({static_cast<std::uint32_t>(i), 0, StateVector::cpu_only(cpu)});
    sum += cpu;
  }
  if (total_cpu != nullptr) *total_cpu = sum;
  return vms;
}

TEST(ShapleyVhcEstimator, KernelFallThroughPinsTheCompositionBoundary) {
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0));
  SampledKernelConfig config;
  config.composition_threshold = 256;
  estimator.set_sampled_kernel(config);

  // 8 all-distinct VMs: composition count is exactly 2^8 = 256 — *at* the
  // threshold, not above it — and with no symmetry to collapse the batched
  // mask sweep is the chosen exact kernel.
  double total_cpu = 0.0;
  const auto eight = mixed_fleet(8, 0, &total_cpu);
  (void)estimator.estimate(eight, 10.0 * total_cpu);
  EXPECT_EQ(estimator.last_kernel(), "sweep");

  // One duplicated state shrinks 8 VMs to 7 groups: 3 * 2^6 = 192
  // compositions, and symmetry collapse wins.
  const auto paired = mixed_fleet(7, 1, &total_cpu);
  (void)estimator.estimate(paired, 10.0 * total_cpu);
  EXPECT_EQ(estimator.last_kernel(), "collapsed");

  // 9 all-distinct VMs: 2^9 = 512 > 256 — the first composition count over
  // the threshold falls through to the sampled tier.
  const auto nine = mixed_fleet(9, 0, &total_cpu);
  const auto phi = estimator.estimate(nine, 10.0 * total_cpu);
  EXPECT_EQ(estimator.last_kernel(), "sampled");
  EXPECT_NE(estimator.last_sampled().stopped_by, "none");
  EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), 10.0 * total_cpu,
              1e-9);
}

TEST(ShapleyVhcEstimator, SampledTierMatchesTheExactKernelWithinItsCi) {
  constexpr std::size_t n = 12;
  double total_cpu = 0.0;
  const auto vms = mixed_fleet(n, 0, &total_cpu);
  const double measured = 10.0 * total_cpu;

  ShapleyVhcEstimator exact(VhcUniverse({0}), exact_linear_approx(10.0));
  const auto reference = exact.estimate(vms, measured);
  EXPECT_EQ(exact.last_kernel(), "sweep");

  ShapleyVhcEstimator sampled(VhcUniverse({0}), exact_linear_approx(10.0));
  SampledKernelConfig config;
  config.kernel = SampledKernelConfig::Kernel::kSampled;
  config.sampling.seed = 4;
  config.sampling.max_samples = 6000;
  sampled.set_sampled_kernel(config);
  const auto approx = sampled.estimate(vms, measured);
  EXPECT_EQ(sampled.last_kernel(), "sampled");

  const SampledTickStats& stats = sampled.last_sampled();
  EXPECT_EQ(stats.stopped_by, "max_samples");
  EXPECT_GT(stats.worth_evaluations, 0u);
  EXPECT_LE(stats.efficiency_gap_w, stats.sum_halfwidth_w);
  const double bound =
      stats.max_halfwidth_w + stats.sum_halfwidth_w / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LE(std::abs(approx[i] - reference[i]), bound) << "vm " << i;
  EXPECT_NEAR(std::accumulate(approx.begin(), approx.end(), 0.0), measured,
              1e-9);
}

TEST(ShapleyVhcEstimator, AutoPicksSampledForSixtyFourDistinctVms) {
  // 64 pairwise-distinct VMs: 2^64 compositions saturates to SIZE_MAX,
  // clearing any finite threshold — the host answers in bounded time where
  // every exact kernel would never return.
  double total_cpu = 0.0;
  auto vms = mixed_fleet(64, 0, &total_cpu);
  vms[63].state = StateVector::zero();  // one idle VM rides along.
  total_cpu -= 0.3 + 0.017 * 63.0;
  const double measured = 10.0 * total_cpu;

  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0));
  const auto phi = estimator.estimate(vms, measured);
  EXPECT_EQ(estimator.last_kernel(), "sampled");
  const SampledTickStats& stats = estimator.last_sampled();
  EXPECT_LE(stats.worth_evaluations, SampledShapleyOptions{}.max_samples);
  EXPECT_EQ(estimator.worth_queries(), stats.worth_evaluations);
  EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), measured, 1e-9);
  // The additive law makes 10 * cpu the exact share; the idle VM is ~0.
  const double bound =
      stats.max_halfwidth_w + stats.sum_halfwidth_w / 64.0;
  for (std::size_t i = 0; i < 63; ++i)
    EXPECT_LE(std::abs(phi[i] - 10.0 * (0.3 + 0.017 * static_cast<double>(i))),
              bound)
        << "vm " << i;
  EXPECT_LE(std::abs(phi[63]), bound);
}

TEST(ShapleyVhcEstimator, SampledTicksReplayExactlyAndNeverShareDraws) {
  constexpr std::size_t n = 16;
  double total_cpu = 0.0;
  const auto vms = mixed_fleet(n, 0, &total_cpu);
  const double measured = 10.0 * total_cpu;

  SampledKernelConfig config;
  config.kernel = SampledKernelConfig::Kernel::kSampled;
  config.sampling.max_samples = 2000;

  // Same config, same call order: serial and pooled estimators agree
  // byte-for-byte (the fold is thread-count independent).
  ShapleyVhcEstimator serial(VhcUniverse({0}), exact_linear_approx(10.0));
  serial.set_sampled_kernel(config);
  ShapleyVhcEstimator pooled(VhcUniverse({0}), exact_linear_approx(10.0));
  pooled.set_sampled_kernel(config);
  util::ThreadPool pool(3);
  pooled.set_thread_pool(&pool, /*min_players=*/4);

  const auto first = serial.estimate(vms, measured);
  EXPECT_EQ(first, pooled.estimate(vms, measured));

  // The next tick mixes the call counter into the seed: identical input,
  // different draws, so the estimate moves (while staying reproducible).
  const auto second = serial.estimate(vms, measured);
  EXPECT_NE(first, second);
  EXPECT_EQ(second, pooled.estimate(vms, measured));
}

TEST(ShapleyVhcEstimator, ForcedKernelsRespectTheirOwnLimits) {
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0));

  // Forcing the 2^n sweep past kMaxPlayers is refused, not attempted.
  SampledKernelConfig force_sweep;
  force_sweep.kernel = SampledKernelConfig::Kernel::kSweep;
  estimator.set_sampled_kernel(force_sweep);
  double total_cpu = 0.0;
  const auto big = mixed_fleet(kMaxPlayers + 1, 0, &total_cpu);
  EXPECT_THROW(estimator.estimate(big, 10.0 * total_cpu),
               std::invalid_argument);

  // Forcing the sampled tier works at any size, even where auto would pick
  // an exact kernel.
  SampledKernelConfig force_sampled;
  force_sampled.kernel = SampledKernelConfig::Kernel::kSampled;
  estimator.set_sampled_kernel(force_sampled);
  const auto vms = mixed_fleet(4, 0, &total_cpu);
  const auto phi = estimator.estimate(vms, 10.0 * total_cpu);
  EXPECT_EQ(estimator.last_kernel(), "sampled");
  EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), 10.0 * total_cpu,
              1e-9);

  // Past kMaxSampledPlayers nothing can meter the host.
  const auto too_big = mixed_fleet(kMaxSampledPlayers + 1, 0, &total_cpu);
  EXPECT_THROW(estimator.estimate(too_big, 10.0 * total_cpu),
               std::invalid_argument);
}

TEST(SymmetryGroups, CompositionCountSaturatesInsteadOfWrapping) {
  // 64 singleton groups would be 2^64 compositions — one past what size_t
  // holds — and must clamp to SIZE_MAX so threshold comparisons stay sane.
  std::vector<std::size_t> keys(64, 0);
  std::vector<StateVector> states;
  for (std::size_t i = 0; i < 64; ++i)
    states.push_back(StateVector::cpu_only(0.01 * static_cast<double>(i + 1)));
  const SymmetryGroups groups = detect_symmetry(keys, states);
  ASSERT_TRUE(groups.all_distinct());
  EXPECT_EQ(groups.composition_count(),
            std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace vmp::core
