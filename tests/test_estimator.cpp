#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "common/vm_config.hpp"
#include "util/rng.hpp"

namespace vmp::core {
namespace {

using common::StateVector;

sim::MachineSpec quiet_spec() {
  sim::MachineSpec spec = sim::xeon_prototype();
  spec.affinity_jitter = 0.0;
  return spec;
}

// Builds an approximation trained on the exact single-VHC linear law
// power = w * aggregated cpu.
VhcLinearApprox exact_linear_approx(double w_cpu) {
  VscTable table(1, 0.01);
  util::Rng rng(1);
  for (int k = 0; k < 200; ++k) {
    const double cpu = rng.uniform(0.0, 2.0);
    table.record(0b1, {{StateVector::cpu_only(cpu)}}, w_cpu * cpu);
  }
  return VhcLinearApprox::fit(table);
}

std::vector<VmSample> two_identical_vms(double u0, double u1) {
  return {{0, 0, StateVector::cpu_only(u0)}, {1, 0, StateVector::cpu_only(u1)}};
}

TEST(ShapleyVhcEstimator, SplitsEquallyForSymmetricVms) {
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0));
  const auto phi = estimator.estimate(two_identical_vms(1.0, 1.0), 20.0);
  EXPECT_NEAR(phi[0], 10.0, 0.05);
  EXPECT_NEAR(phi[1], 10.0, 0.05);
}

TEST(ShapleyVhcEstimator, AnchoredEfficiencyExact) {
  // Even with a deliberately wrong approximation, anchoring the grand
  // coalition to the measurement keeps Σ Φ = P (the paper's Sec. VII-C note).
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(5.0));
  const double measured = 21.7;
  const auto phi = estimator.estimate(two_identical_vms(1.0, 0.6), measured);
  EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), measured, 1e-9);
}

TEST(ShapleyVhcEstimator, UnanchoredSumsToApproximation) {
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0),
                                /*anchor=*/false);
  const auto phi = estimator.estimate(two_identical_vms(1.0, 0.5), 999.0);
  // v(N) by the linear approximation = 10 * (1.0 + 0.5) = 15, not 999.
  EXPECT_NEAR(std::accumulate(phi.begin(), phi.end(), 0.0), 15.0, 0.1);
}

TEST(ShapleyVhcEstimator, HigherUtilizationGetsLargerShare) {
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0));
  const auto phi = estimator.estimate(two_identical_vms(0.9, 0.3), 12.0);
  EXPECT_GT(phi[0], phi[1]);
  EXPECT_NEAR(phi[0] + phi[1], 12.0, 1e-9);
}

TEST(ShapleyVhcEstimator, IdleVmGetsNothing) {
  // Dummy axiom through the full pipeline: a zero-state VM must get ~0 W.
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0));
  const auto phi = estimator.estimate(two_identical_vms(1.0, 0.0), 10.0);
  EXPECT_NEAR(phi[1], 0.0, 0.05);
  EXPECT_NEAR(phi[0], 10.0, 0.05);
}

TEST(ShapleyVhcEstimator, InputValidation) {
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0));
  EXPECT_THROW(estimator.estimate({}, 10.0), std::invalid_argument);
  EXPECT_THROW(estimator.estimate(two_identical_vms(1.0, 1.0), -1.0),
               std::invalid_argument);
  // Unknown type id.
  const std::vector<VmSample> unknown = {{0, 42, StateVector::cpu_only(1.0)}};
  EXPECT_THROW(estimator.estimate(unknown, 5.0), std::out_of_range);
}

TEST(ShapleyVhcEstimator, UniverseMismatchRejected) {
  EXPECT_THROW(
      ShapleyVhcEstimator(VhcUniverse({0, 1}), exact_linear_approx(10.0)),
      std::invalid_argument);
}

TEST(OracleShapleyEstimator, MatchesPaperTwoVmNumbers) {
  sim::MachineSpec spec = quiet_spec();
  spec.pack_affinity = 1.0;
  spec.llc_contention_w = 0.0;
  const sim::CoalitionProbe probe(spec,
                                  {common::demo_c_vm(), common::demo_c_vm()});
  OracleShapleyEstimator estimator(probe);
  const auto phi = estimator.estimate(two_identical_vms(1.0, 1.0), 0.0);
  // v1 = 13.15, v12 = 13.15 * (2 - 0.4615) => phi = v12 / 2 each.
  const double expected = 13.15 * (2.0 - spec.smt_contention) / 2.0;
  EXPECT_NEAR(phi[0], expected, 1e-9);
  EXPECT_NEAR(phi[1], expected, 1e-9);
}

TEST(OracleShapleyEstimator, AnchoringOverridesGrandWorth) {
  const sim::CoalitionProbe probe(quiet_spec(),
                                  {common::demo_c_vm(), common::demo_c_vm()});
  OracleShapleyEstimator anchored(probe, /*anchor=*/true);
  const double measured = 30.0;
  const auto phi = anchored.estimate(two_identical_vms(1.0, 1.0), measured);
  EXPECT_NEAR(phi[0] + phi[1], measured, 1e-9);
}

TEST(OracleShapleyEstimator, FleetMismatchRejected) {
  const sim::CoalitionProbe probe(quiet_spec(), {common::demo_c_vm()});
  OracleShapleyEstimator estimator(probe);
  EXPECT_THROW(estimator.estimate(two_identical_vms(1.0, 1.0), 0.0),
               std::invalid_argument);
  const std::vector<VmSample> wrong_type = {
      {0, 99, StateVector::cpu_only(1.0)}};
  EXPECT_THROW(estimator.estimate(wrong_type, 0.0), std::invalid_argument);
}

TEST(ShapleyVhcEstimator, TableLookupFirstUsesMeasuredWorths) {
  // Fig. 8's online path: if the (quantized) state was measured offline, the
  // table answer overrides the regression. We plant a table entry that
  // contradicts the linear model and check it wins.
  VscTable table(1, 0.01);
  table.record(0b1, {{StateVector::cpu_only(1.0)}}, 999.0);
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0),
                                std::move(table), /*anchor=*/false);
  const std::vector<VmSample> one = {{0, 0, StateVector::cpu_only(1.0)}};
  const auto phi = estimator.estimate(one, 0.0);
  EXPECT_NEAR(phi[0], 999.0, 1e-9);
  EXPECT_DOUBLE_EQ(estimator.table_hit_rate(), 1.0);
}

TEST(ShapleyVhcEstimator, TableMissFallsBackToRegression) {
  VscTable table(1, 0.01);
  table.record(0b1, {{StateVector::cpu_only(0.2)}}, 2.0);
  ShapleyVhcEstimator estimator(VhcUniverse({0}), exact_linear_approx(10.0),
                                std::move(table), /*anchor=*/false);
  const std::vector<VmSample> one = {{0, 0, StateVector::cpu_only(0.9)}};
  const auto phi = estimator.estimate(one, 0.0);
  EXPECT_NEAR(phi[0], 9.0, 0.1);  // regression answer
  EXPECT_DOUBLE_EQ(estimator.table_hit_rate(), 0.0);
}

TEST(ShapleyVhcEstimator, TableVhcCountMustMatchUniverse) {
  VscTable table(2, 0.01);
  table.record(0b01, {{StateVector::cpu_only(1.0), StateVector::zero()}}, 1.0);
  EXPECT_THROW(ShapleyVhcEstimator(VhcUniverse({0}), exact_linear_approx(10.0),
                                   std::move(table)),
               std::invalid_argument);
}

TEST(Estimators, NamesAreStable) {
  ShapleyVhcEstimator vhc(VhcUniverse({0}), exact_linear_approx(1.0));
  EXPECT_EQ(vhc.name(), "shapley-vhc");
  const sim::CoalitionProbe probe(quiet_spec(), {common::demo_c_vm()});
  OracleShapleyEstimator oracle(probe);
  EXPECT_EQ(oracle.name(), "shapley-oracle");
}

}  // namespace
}  // namespace vmp::core
