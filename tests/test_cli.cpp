#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::util {
namespace {

TEST(CliArgs, CommandAndPositionals) {
  const CliArgs args({"meter", "extra"});
  EXPECT_EQ(args.command(), "meter");
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[1], "extra");
  EXPECT_EQ(CliArgs({}).command(), "");
}

TEST(CliArgs, OptionsWithValues) {
  const CliArgs args({"collect", "--fleet", "VM1,VM2", "--duration", "300"});
  EXPECT_TRUE(args.has("fleet"));
  EXPECT_EQ(args.get("fleet"), "VM1,VM2");
  EXPECT_DOUBLE_EQ(args.get_double("duration", 0.0), 300.0);
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("missing", 7.5), 7.5);
  EXPECT_EQ(args.get_long("missing", 9), 9);
}

TEST(CliArgs, FlagsHaveEmptyValues) {
  const CliArgs args({"meter", "--verbose", "--out", "x.csv"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", "unset"), "");
  EXPECT_EQ(args.get("out"), "x.csv");
}

TEST(CliArgs, FlagFollowedByOptionIsFlag) {
  const CliArgs args({"--flag", "--key", "value"});
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("flag", "unset"), "");
  EXPECT_EQ(args.get("key"), "value");
}

TEST(CliArgs, RequireThrowsWhenMissing) {
  const CliArgs args({"train", "--table", "t.vsc"});
  EXPECT_EQ(args.require("table"), "t.vsc");
  EXPECT_THROW(args.require("out"), std::invalid_argument);
  // Present as a flag (empty value) also fails require.
  const CliArgs flag({"--out"});
  EXPECT_THROW(flag.require("out"), std::invalid_argument);
}

TEST(CliArgs, NumericValidation) {
  const CliArgs args({"--duration", "abc", "--seed", "1.5"});
  EXPECT_THROW(args.get_double("duration", 0.0), std::invalid_argument);
  EXPECT_THROW(args.get_long("seed", 0), std::invalid_argument);
}

TEST(CliArgs, NegativeNumbersParse) {
  // A negative value does not start with "--", so it binds as a value.
  const CliArgs args({"--offset", "-5"});
  EXPECT_EQ(args.get_long("offset", 0), -5);
}

TEST(CliArgs, UnknownKeysDetected) {
  const CliArgs args({"--fleet", "VM1", "--tpyo", "x"});
  const auto unknown = args.unknown_keys({"fleet", "out"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "tpyo");
}

TEST(CliArgs, BareDashesRejected) {
  EXPECT_THROW(CliArgs({"--"}), std::invalid_argument);
}

TEST(CliArgs, ArgcArgvConstructor) {
  const char* argv[] = {"vmpower", "meter", "--duration", "60"};
  const CliArgs args(4, argv);
  EXPECT_EQ(args.command(), "meter");
  EXPECT_DOUBLE_EQ(args.get_double("duration", 0.0), 60.0);
}

TEST(SplitCsv, Basics) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("one"), (std::vector<std::string>{"one"}));
  EXPECT_TRUE(split_csv("").empty());
  EXPECT_EQ(split_csv("a,,b"), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_csv("a,"), (std::vector<std::string>{"a", ""}));
}

}  // namespace
}  // namespace vmp::util
