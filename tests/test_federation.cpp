// Multi-fleet federation: shard map parsing, per-shard health tracking, the
// scatter-gather frontend's Additivity roll-up (byte-identical to a single
// merged fleet), graceful partial failure, epoch-skew policy, per-query
// deadlines, and hedged requests.
#include "federate/frontend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "federate/health.hpp"
#include "federate/pool.hpp"
#include "federate/shard_map.hpp"
#include "federate/spin.hpp"
#include "obs/invariants.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/transport.hpp"

namespace vmp::federate {
namespace {

using serve::ErrorCode;
using serve::QueryKind;
using serve::Request;
using serve::Response;

// --- shard map --------------------------------------------------------------

TEST(ShardMap, ParsesFleetsEndpointsAndReplicas) {
  const ShardMap map = ShardMap::parse("2=7002,7012;1=127.0.0.1:7001;3=7003");
  ASSERT_EQ(map.size(), 3u);
  EXPECT_EQ(map.shards()[0].fleet, 1u);  // sorted by fleet id.
  EXPECT_EQ(map.shards()[0].primary(), 7001);
  EXPECT_FALSE(map.shards()[0].has_replica());
  ASSERT_NE(map.find(2), nullptr);
  EXPECT_TRUE(map.find(2)->has_replica());
  EXPECT_EQ(map.find(2)->endpoints[1], 7012);
  EXPECT_EQ(map.find(9), nullptr);
  // Canonical spec round-trips.
  EXPECT_EQ(map.spec(), "1=7001;2=7002,7012;3=7003");
  EXPECT_EQ(ShardMap::parse(map.spec()).spec(), map.spec());
}

TEST(ShardMap, RejectsMalformedSpecs) {
  EXPECT_THROW(ShardMap::parse(""), std::invalid_argument);
  EXPECT_THROW(ShardMap::parse("1"), std::invalid_argument);
  EXPECT_THROW(ShardMap::parse("1="), std::invalid_argument);
  EXPECT_THROW(ShardMap::parse("1=0"), std::invalid_argument);
  EXPECT_THROW(ShardMap::parse("1=70000"), std::invalid_argument);
  EXPECT_THROW(ShardMap::parse("1=7001;1=7002"), std::invalid_argument);
  EXPECT_THROW(ShardMap::parse("1=10.0.0.1:7001"), std::invalid_argument);
  EXPECT_THROW(ShardMap::parse("x=7001"), std::invalid_argument);
}

// --- health tracker ---------------------------------------------------------

TEST(ShardHealth, EjectsAfterConsecutiveFailuresAndProbesBack) {
  HealthOptions options;
  options.eject_after = 3;
  options.probe_interval = 2;
  ShardHealthTracker health(options);

  EXPECT_TRUE(health.should_try(1));
  health.record_failure(1);
  health.record_failure(1);
  EXPECT_FALSE(health.ejected(1));
  // A success anywhere in the run resets the consecutive count.
  health.record_success(1);
  health.record_failure(1);
  health.record_failure(1);
  EXPECT_FALSE(health.ejected(1));
  health.record_failure(1);
  EXPECT_TRUE(health.ejected(1));
  EXPECT_EQ(health.ejections(), 1u);

  // While ejected, every probe_interval-th fan-out is a probe.
  EXPECT_FALSE(health.should_try(1));
  EXPECT_TRUE(health.should_try(1));  // probe turn.
  EXPECT_FALSE(health.should_try(1));
  EXPECT_TRUE(health.should_try(1));

  // A probe success re-admits immediately.
  health.record_success(1);
  EXPECT_FALSE(health.ejected(1));
  EXPECT_TRUE(health.should_try(1));
  EXPECT_EQ(health.readmissions(), 1u);

  // Other shards are independent.
  EXPECT_TRUE(health.should_try(2));
  EXPECT_FALSE(health.ejected(2));
}

// --- partial-response codec -------------------------------------------------

TEST(PartialResponse, BinaryRoundTripCarriesMissingShards) {
  const Response partial =
      Response::partial(7, {12.5, 3.0}, {4, 2});
  EXPECT_TRUE(partial.ok);
  EXPECT_FALSE(partial.complete);

  const std::string body = serve::encode_response(partial);
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body[0], '\2');  // partial status byte.
  const auto decoded = serve::decode_response(body);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->ok);
  EXPECT_FALSE(decoded->complete);
  EXPECT_EQ(decoded->epoch, 7u);
  EXPECT_EQ(decoded->values, partial.values);
  EXPECT_EQ(decoded->missing_shards, partial.missing_shards);

  // An empty missing list makes partial() collapse to a complete success,
  // byte-identical to the pre-federation encoding.
  const Response complete = Response::partial(7, {12.5, 3.0}, {});
  EXPECT_TRUE(complete.complete);
  EXPECT_EQ(serve::encode_response(complete),
            serve::encode_response(Response::success(7, {12.5, 3.0})));

  // Garbage partial bodies are rejected, not crashes.
  std::string truncated = body.substr(0, body.size() - 2);
  EXPECT_FALSE(serve::decode_response(truncated).has_value());
  std::string bad_status = body;
  bad_status[0] = '\3';
  EXPECT_FALSE(serve::decode_response(bad_status).has_value());
}

TEST(PartialResponse, TextFormCarriesAMissingToken) {
  const Response partial = Response::partial(9, {42.0}, {1, 3});
  const std::string line = serve::format_response_text(partial);
  EXPECT_NE(line.find("OK 9 "), std::string::npos);
  EXPECT_NE(line.find(" missing=1,3"), std::string::npos);
  // Complete responses never grow the token.
  const std::string complete =
      serve::format_response_text(Response::success(9, {42.0}));
  EXPECT_EQ(complete.find("missing"), std::string::npos);
}

// --- scatter-gather ---------------------------------------------------------

/// Shard `fleet`'s synthetic state at integer time t. Hosts are disjoint
/// (host id == fleet id); every energy is an integer number of joules and a
/// multiple of 3.6e6 (whole kWh), and the TOU rate is 0.125 $/kWh — a power
/// of two — so every cross-shard sum, difference, and cost computation is
/// exact in doubles and the Additivity roll-up must be *byte*-identical to
/// the merged fleet, not merely close.
constexpr double kJPerKwh = 3.6e6;

serve::Snapshot shard_at(std::uint32_t fleet, double t) {
  const double f = static_cast<double>(fleet);
  serve::Snapshot snapshot;
  snapshot.tick = static_cast<std::uint64_t>(t);
  snapshot.time_s = t;
  snapshot.vms = {{fleet, 1, 1, f, f * t * kJPerKwh},
                  {fleet, 2, 2, 2.0 * f, 2.0 * f * t * kJPerKwh}};
  snapshot.tenants = {{1, f, f * t * kJPerKwh},
                      {2, 2.0 * f, 2.0 * f * t * kJPerKwh}};
  snapshot.total_power_w = 3.0 * f;
  snapshot.total_energy_j = 3.0 * f * t * kJPerKwh;
  return snapshot;
}

/// The single fleet that metered all three shards' VMs itself.
serve::Snapshot merged_at(const std::vector<std::uint32_t>& fleets, double t) {
  serve::Snapshot merged;
  merged.tick = static_cast<std::uint64_t>(t);
  merged.time_s = t;
  double tenant1_w = 0.0, tenant1_j = 0.0, tenant2_w = 0.0, tenant2_j = 0.0;
  for (const std::uint32_t fleet : fleets) {
    const serve::Snapshot shard = shard_at(fleet, t);
    merged.vms.insert(merged.vms.end(), shard.vms.begin(), shard.vms.end());
    tenant1_w += shard.tenants[0].power_w;
    tenant1_j += shard.tenants[0].energy_j;
    tenant2_w += shard.tenants[1].power_w;
    tenant2_j += shard.tenants[1].energy_j;
    merged.total_power_w += shard.total_power_w;
    merged.total_energy_j += shard.total_energy_j;
  }
  std::sort(merged.vms.begin(), merged.vms.end(),
            [](const serve::VmRecord& a, const serve::VmRecord& b) {
              return a.host != b.host ? a.host < b.host : a.vm < b.vm;
            });
  merged.tenants = {{1, tenant1_w, tenant1_j}, {2, tenant2_w, tenant2_j}};
  return merged;
}

serve::QueryEngineOptions exact_tou_options() {
  serve::QueryEngineOptions options;
  options.tou.offpeak_usd_per_kwh = 0.125;
  options.tou.peak_usd_per_kwh = 0.125;
  return options;
}

serve::ServerOptions quick_server() {
  serve::ServerOptions options;
  options.port = 0;
  options.workers = 2;
  return options;
}

Request make_request(QueryKind kind, std::uint32_t host, std::uint32_t vm,
                     std::uint32_t tenant, double t0 = 0.0, double t1 = 0.0) {
  Request request;
  request.kind = kind;
  request.host = host;
  request.vm = vm;
  request.tenant = tenant;
  request.t0 = t0;
  request.t1 = t1;
  return request;
}

/// Three in-process shards (fleets 1..3) with published epochs 1..ticks.
struct Federation {
  std::vector<std::unique_ptr<InProcessShard>> shards;
  fleet::Metrics metrics;
  obs::InvariantMonitor monitor{metrics};

  explicit Federation(int ticks = 4, FrontendOptions options = {}) {
    std::vector<FleetShard> mapped;
    for (std::uint32_t fleet = 1; fleet <= 3; ++fleet) {
      InProcessShardOptions shard_options;
      shard_options.fleet = fleet;
      shard_options.engine = exact_tou_options();
      shard_options.server = quick_server();
      auto shard = std::make_unique<InProcessShard>(shard_options);
      for (int t = 1; t <= ticks; ++t)
        shard->store().publish(shard_at(fleet, t));
      mapped.push_back(FleetShard{fleet, {shard->port()}});
      shards.push_back(std::move(shard));
    }
    options.metrics = &metrics;
    options.monitor = &monitor;
    frontend = std::make_unique<FederationFrontend>(
        ShardMap(std::move(mapped)), options);
  }

  std::unique_ptr<FederationFrontend> frontend;
};

TEST(Federation, RollupIsByteIdenticalToTheMergedFleet) {
  Federation fed(/*ticks=*/4);

  // The reference: one fleet that metered every VM itself.
  serve::SnapshotStore merged_store(16);
  for (int t = 1; t <= 4; ++t) merged_store.publish(merged_at({1, 2, 3}, t));
  serve::QueryEngine merged(merged_store, exact_tou_options());

  const std::vector<Request> requests = {
      make_request(QueryKind::kFleetPower, 0, 0, 0),
      make_request(QueryKind::kTenantPower, 0, 0, 1),
      make_request(QueryKind::kTenantPower, 0, 0, 2),
      make_request(QueryKind::kVmPower, 2, 1, 0),  // lives on shard 2 only.
      make_request(QueryKind::kVmEnergy, 3, 2, 0, 1.0, 4.0),
      make_request(QueryKind::kTenantEnergy, 0, 0, 1, 1.0, 3.0),
      make_request(QueryKind::kTenantEnergy, 0, 0, 2, 2.0, 4.0),
      make_request(QueryKind::kTenantCost, 0, 0, 1, 1.0, 4.0),
      make_request(QueryKind::kStats, 0, 0, 0),
  };
  for (const Request& request : requests) {
    const Response federated = fed.frontend->execute(request);
    const Response reference = merged.execute(request);
    ASSERT_TRUE(federated.ok) << request.canonical() << ": "
                              << federated.message;
    EXPECT_TRUE(federated.complete) << request.canonical();
    // Byte-identity on both encodings, epoch included.
    EXPECT_EQ(serve::encode_response(federated),
              serve::encode_response(reference))
        << request.canonical();
    EXPECT_EQ(serve::format_response_text(federated),
              serve::format_response_text(reference))
        << request.canonical();
  }
  // Fault-free roll-ups kept Additivity exactly: no invariant breaches, and
  // the residual gauge pinned at zero.
  EXPECT_EQ(fed.monitor.breaches(), 0u);
  EXPECT_EQ(fed.metrics.gauge("vmpower_fed_additivity_residual", "").value(),
            0.0);
}

TEST(Federation, UnknownEntitySemantics) {
  Federation fed;
  // A VM no shard owns: every shard reports kUnknownEntity, so the
  // federation does too (known-zero everywhere is "unknown", not 0 J).
  const Response unknown =
      fed.frontend->execute(make_request(QueryKind::kVmPower, 9, 9, 0));
  ASSERT_FALSE(unknown.ok);
  EXPECT_EQ(unknown.code, ErrorCode::kUnknownEntity);

  // A VM exactly one shard owns answers with that shard's value.
  const Response owned =
      fed.frontend->execute(make_request(QueryKind::kVmPower, 3, 1, 0));
  ASSERT_TRUE(owned.ok) << owned.message;
  ASSERT_EQ(owned.values.size(), 1u);
  EXPECT_EQ(owned.values[0], 3.0);
}

TEST(Federation, KilledShardDegradesToAFlaggedPartial) {
  FrontendOptions options;
  options.deadline = std::chrono::milliseconds(300);
  options.retries = 0;
  Federation fed(/*ticks=*/4, options);
  fed.shards[1]->stop();  // fleet 2 dies mid-run.

  const Response partial = fed.frontend->execute(
      make_request(QueryKind::kTenantEnergy, 0, 0, 1, 1.0, 4.0));
  ASSERT_TRUE(partial.ok) << partial.message;
  EXPECT_FALSE(partial.complete);
  ASSERT_EQ(partial.missing_shards.size(), 1u);
  EXPECT_EQ(partial.missing_shards[0], 2u);
  // Fleets 1 and 3 still contribute: (1+3) kWh/s * 3 s window.
  ASSERT_EQ(partial.values.size(), 1u);
  EXPECT_EQ(partial.values[0], 4.0 * 3.0 * kJPerKwh);
  EXPECT_GE(
      fed.metrics.counter("vmpower_fed_partial_total", "").value(), 1u);

  // With every shard dead the query degrades to kUnavailable, not a hang.
  fed.shards[0]->stop();
  fed.shards[2]->stop();
  const Response down = fed.frontend->execute(
      make_request(QueryKind::kFleetPower, 0, 0, 0));
  ASSERT_FALSE(down.ok);
  EXPECT_EQ(down.code, ErrorCode::kUnavailable);
}

TEST(Federation, ConsecutiveFailuresEjectTheShard) {
  FrontendOptions options;
  options.deadline = std::chrono::milliseconds(200);
  options.retries = 0;
  options.health.eject_after = 2;
  options.health.probe_interval = 100;  // no probe inside this test.
  Federation fed(/*ticks=*/2, options);
  fed.shards[2]->stop();  // fleet 3 dies.

  const Request request = make_request(QueryKind::kFleetPower, 0, 0, 0);
  (void)fed.frontend->execute(request);
  (void)fed.frontend->execute(request);
  EXPECT_TRUE(fed.frontend->health().ejected(3));

  // Ejected shards are not even attempted, but still reported missing.
  const Response partial = fed.frontend->execute(request);
  ASSERT_TRUE(partial.ok);
  EXPECT_FALSE(partial.complete);
  ASSERT_EQ(partial.missing_shards.size(), 1u);
  EXPECT_EQ(partial.missing_shards[0], 3u);
}

TEST(Federation, EpochSkewPolicy) {
  // Shard 3 lags one epoch behind shards 1 and 2.
  auto build = [](FrontendOptions options, fleet::Metrics& metrics) {
    std::vector<std::unique_ptr<InProcessShard>> shards;
    std::vector<FleetShard> mapped;
    for (std::uint32_t fleet = 1; fleet <= 3; ++fleet) {
      InProcessShardOptions shard_options;
      shard_options.fleet = fleet;
      shard_options.engine = exact_tou_options();
      shard_options.server = quick_server();
      auto shard = std::make_unique<InProcessShard>(shard_options);
      const int ticks = fleet == 3 ? 3 : 4;
      for (int t = 1; t <= ticks; ++t)
        shard->store().publish(shard_at(fleet, t));
      mapped.push_back(FleetShard{fleet, {shard->port()}});
      shards.push_back(std::move(shard));
    }
    options.metrics = &metrics;
    return std::make_pair(
        std::move(shards),
        std::make_unique<FederationFrontend>(ShardMap(std::move(mapped)),
                                             options));
  };

  const Request request = make_request(QueryKind::kFleetPower, 0, 0, 0);
  {
    // Default policy: accept, roll up at the minimum epoch, export skew.
    fleet::Metrics metrics;
    auto [shards, frontend] = build(FrontendOptions{}, metrics);
    const Response accepted = frontend->execute(request);
    ASSERT_TRUE(accepted.ok) << accepted.message;
    EXPECT_EQ(accepted.epoch, 3u);  // min over {4, 4, 3}.
    EXPECT_EQ(metrics.gauge("vmpower_fed_epoch_skew", "").value(), 1.0);
  }
  {
    // Reject policy with a zero budget refuses the skewed roll-up.
    FrontendOptions options;
    options.skew_policy = SkewPolicy::kReject;
    options.max_epoch_skew = 0;
    fleet::Metrics metrics;
    auto [shards, frontend] = build(options, metrics);
    const Response rejected = frontend->execute(request);
    ASSERT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.code, ErrorCode::kEpochSkew);
    EXPECT_EQ(rejected.detail, 1u);  // the observed spread.
  }
  {
    // Reject policy with budget >= spread still answers.
    FrontendOptions options;
    options.skew_policy = SkewPolicy::kReject;
    options.max_epoch_skew = 1;
    fleet::Metrics metrics;
    auto [shards, frontend] = build(options, metrics);
    EXPECT_TRUE(frontend->execute(request).ok);
  }
}

TEST(Federation, ServedOverTheWireLikeAnyFleet) {
  // The frontend is a QueryHandler: the stock Server fronts it, and a stock
  // Client speaks to the federation exactly as to a single fleet.
  FrontendOptions options;
  options.deadline = std::chrono::milliseconds(300);
  options.retries = 0;
  Federation fed(/*ticks=*/4, options);
  serve::Server server(*fed.frontend, fed.metrics, quick_server());
  serve::Client client(server.port());

  const Response stats =
      client.query(make_request(QueryKind::kStats, 0, 0, 0));
  ASSERT_TRUE(stats.ok);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.values.at(2), 6.0);  // six VMs across the shards.

  // Text protocol, with a killed shard: the partial's missing token arrives
  // verbatim at a line-oriented client. (One connection speaks one protocol
  // — the server sniffs the mode from the first byte — so a fresh client.)
  fed.shards[0]->stop();
  serve::Client text_client(server.port());
  const std::string line = text_client.query_text("tenant-energy 1 1 4");
  EXPECT_EQ(line.rfind("OK ", 0), 0u) << line;
  EXPECT_NE(line.find(" missing=1"), std::string::npos) << line;

  // And the in-process transport drives the identical path.
  serve::InProcessTransport transport(*fed.frontend, &fed.metrics);
  const Response direct =
      transport.query(make_request(QueryKind::kFleetPower, 0, 0, 0));
  ASSERT_TRUE(direct.ok);
  EXPECT_FALSE(direct.complete);
  server.stop();
}

// --- per-query deadlines (serve::Client::set_timeout) -----------------------

TEST(ClientDeadline, TimesOutCleanlyInsteadOfBlocking) {
  InProcessShardOptions options;
  options.fleet = 1;
  options.server = quick_server();
  options.server.worker_delay = std::chrono::milliseconds(400);
  InProcessShard shard(options);
  shard.store().publish(shard_at(1, 1.0));

  serve::Client client(shard.port());
  client.set_timeout(std::chrono::milliseconds(50));
  EXPECT_EQ(client.timeout().count(), 50);
  EXPECT_THROW((void)client.query(make_request(QueryKind::kStats, 0, 0, 0)),
               serve::TimeoutError);

  // Without a timeout the same query blocks through the delay and answers.
  serve::Client patient(shard.port());
  const Response response =
      patient.query(make_request(QueryKind::kStats, 0, 0, 0));
  EXPECT_TRUE(response.ok);
  shard.stop();
}

// --- hedged requests --------------------------------------------------------

TEST(Federation, HedgedRequestBeatsASlowPrimary) {
  // One shard whose primary server stalls every request by 300 ms while its
  // replica answers immediately: with hedging on, the replica's answer wins
  // long before the primary's, and the hedge counters prove the path ran.
  InProcessShardOptions shard_options;
  shard_options.fleet = 1;
  shard_options.engine = exact_tou_options();
  shard_options.server = quick_server();
  shard_options.server.worker_delay = std::chrono::milliseconds(300);
  shard_options.replica = quick_server();
  InProcessShard shard(shard_options);
  for (int t = 1; t <= 2; ++t) shard.store().publish(shard_at(1, t));

  FrontendOptions options;
  options.deadline = std::chrono::milliseconds(2000);
  options.retries = 0;
  options.hedge = true;
  options.hedge_delay = std::chrono::milliseconds(20);
  fleet::Metrics metrics;
  options.metrics = &metrics;
  FederationFrontend frontend(
      ShardMap({FleetShard{1, {shard.port(), shard.replica_port()}}}),
      options);

  const auto start = std::chrono::steady_clock::now();
  const Response response =
      frontend.execute(make_request(QueryKind::kFleetPower, 0, 0, 0));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_TRUE(response.complete);
  EXPECT_EQ(response.values.at(0), 3.0);
  EXPECT_GE(metrics.counter("vmpower_fed_hedges_total", "").value(), 1u);
  EXPECT_GE(metrics.counter("vmpower_fed_hedge_wins_total", "").value(), 1u);
  // The win must land well inside the primary's 300 ms stall (generous
  // bound for sanitizer builds).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            290);
  shard.stop();
}

// --- distributed trace stitching --------------------------------------------

/// Arms the global tracer over a clean ring and disarms it on scope exit even
/// when an assertion bails out of the test early.
struct TracerArm {
  TracerArm() {
    obs::Tracer::global().clear();
    obs::Tracer::global().set_enabled(true);
  }
  ~TracerArm() { obs::Tracer::global().set_enabled(false); }
};

TEST(Federation, FederatedQueryStitchesOneTraceTreeAcrossTiers) {
  // Shard 1's primary stalls every request by 300 ms while its replica
  // answers instantly, forcing a hedge; shard 2 answers plainly. Every tier
  // lives in this process, so the one global tracer receives the frontend's
  // fan-out spans *and* the spans each shard server opens on behalf of the
  // trace context carried over the wire — the full stitched tree of a
  // federated query, inspectable span by span.
  InProcessShardOptions slow_options;
  slow_options.fleet = 1;
  slow_options.engine = exact_tou_options();
  slow_options.server = quick_server();
  slow_options.server.worker_delay = std::chrono::milliseconds(300);
  slow_options.replica = quick_server();
  InProcessShard slow_shard(slow_options);
  slow_shard.store().publish(shard_at(1, 1.0));

  InProcessShardOptions fast_options;
  fast_options.fleet = 2;
  fast_options.engine = exact_tou_options();
  fast_options.server = quick_server();
  InProcessShard fast_shard(fast_options);
  fast_shard.store().publish(shard_at(2, 1.0));

  FrontendOptions options;
  options.deadline = std::chrono::milliseconds(2000);
  options.retries = 0;
  options.hedge = true;
  options.hedge_delay = std::chrono::milliseconds(20);
  FederationFrontend frontend(
      ShardMap({FleetShard{1, {slow_shard.port(), slow_shard.replica_port()}},
                FleetShard{2, {fast_shard.port()}}}),
      options);

  obs::Tracer& tracer = obs::Tracer::global();
  TracerArm armed;
  constexpr std::uint64_t kTrace = 0xf00dull;
  std::uint64_t root_id = 0;
  Response response;
  {
    obs::TraceContext context(kTrace);
    VMP_TRACE_NAMED_SPAN(root_span, "test.fanout", "test");
    root_id = obs::current_span();
    response = frontend.execute(make_request(QueryKind::kFleetPower, 0, 0, 0));
  }
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_TRUE(response.complete);
  EXPECT_EQ(response.values.at(0), 9.0);  // fleets 1 + 2 at t = 1.
  ASSERT_NE(root_id, 0u);

  // The hedge winner returned long before the stalled primary leg finished;
  // wait for that stray to land its spans so the tree is complete.
  auto count_named = [&](const char* name) {
    std::size_t n = 0;
    for (const obs::SpanEvent& event : tracer.snapshot())
      if (std::string_view(event.name) == name) ++n;
    return n;
  };
  for (int spin = 0; spin < 5000 && count_named("fed.attempt") < 2; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const std::vector<obs::SpanEvent> events = tracer.snapshot();
  std::vector<const obs::SpanEvent*> shard_spans, leg_spans, execute_spans;
  for (const obs::SpanEvent& event : events) {
    // One query, one trace id — across the frontend and both shard servers.
    EXPECT_EQ(event.trace_id, kTrace) << event.name;
    const std::string_view name(event.name);
    if (name == "fed.shard") shard_spans.push_back(&event);
    if (name == "fed.attempt" || name == "fed.hedge")
      leg_spans.push_back(&event);
    if (name == "serve.execute") execute_spans.push_back(&event);
  }

  // One fed.shard child of the caller's root span per shard, annotated with
  // its fleet id.
  ASSERT_EQ(shard_spans.size(), 2u);
  std::vector<std::uint64_t> fleets;
  for (const obs::SpanEvent* span : shard_spans) {
    EXPECT_EQ(span->parent_id, root_id);
    ASSERT_STREQ(span->detail_key, "fleet");
    fleets.push_back(span->detail);
  }
  std::sort(fleets.begin(), fleets.end());
  EXPECT_EQ(fleets, (std::vector<std::uint64_t>{1, 2}));

  // Three legs: shard 1's primary attempt and its hedge, shard 2's attempt —
  // each a child of its own fed.shard span.
  ASSERT_EQ(leg_spans.size(), 3u);
  EXPECT_EQ(count_named("fed.hedge"), 1u);
  for (const obs::SpanEvent* leg : leg_spans) {
    const bool under_a_shard =
        leg->parent_id == shard_spans[0]->span_id ||
        leg->parent_id == shard_spans[1]->span_id;
    EXPECT_TRUE(under_a_shard) << leg->name;
  }

  // Each shard server's execute span crossed the wire: its parent is the
  // exact leg (first try or hedge) that carried the request — remote
  // parenting, not same-thread nesting.
  ASSERT_EQ(execute_spans.size(), 3u);
  for (const obs::SpanEvent* execute : execute_spans) {
    bool under_a_leg = false;
    for (const obs::SpanEvent* leg : leg_spans)
      under_a_leg = under_a_leg || execute->parent_id == leg->span_id;
    EXPECT_TRUE(under_a_leg);
  }

  // And the whole tree exports as one Chrome trace.
  const std::string jsonl = tracer.to_chrome_jsonl();
  EXPECT_NE(jsonl.find("fed.hedge"), std::string::npos);
  EXPECT_NE(jsonl.find("serve.execute"), std::string::npos);
  slow_shard.stop();
  fast_shard.stop();
}

// --- connection pool --------------------------------------------------------

/// One shard with published epoch 1, for driving a raw ConnectionPool.
std::unique_ptr<InProcessShard> pool_shard(std::uint16_t port = 0) {
  InProcessShardOptions options;
  options.fleet = 1;
  options.engine = exact_tou_options();
  options.server = quick_server();
  options.server.port = port;
  auto shard = std::make_unique<InProcessShard>(options);
  shard->store().publish(shard_at(1, 1.0));
  return shard;
}

constexpr std::chrono::milliseconds kPoolTimeout{1000};

TEST(ConnectionPool, DistinctConnectionsExactCountsAndIdleBound) {
  auto shard = pool_shard();
  PoolOptions options;
  options.max_idle_per_endpoint = 1;
  ConnectionPool pool(options);

  // Two simultaneous checkouts (what hedged legs do) can never share: a
  // checked-out connection is out of the idle list until checked back in.
  ConnectionPool::Lease a = pool.checkout(shard->port(), kPoolTimeout);
  ConnectionPool::Lease b = pool.checkout(shard->port(), kPoolTimeout);
  ASSERT_NE(a.client, nullptr);
  ASSERT_NE(b.client, nullptr);
  EXPECT_NE(a.client.get(), b.client.get());
  EXPECT_FALSE(a.reused);
  EXPECT_FALSE(b.reused);
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(pool.hits(), 0u);

  const Request request = make_request(QueryKind::kFleetPower, 0, 0, 0);
  EXPECT_TRUE(a.client->query(request).ok);
  EXPECT_TRUE(b.client->query(request).ok);

  // Idle bound 1: the second check-in closes instead of parking.
  pool.checkin(std::move(a));
  pool.checkin(std::move(b));
  EXPECT_EQ(pool.idle(shard->port()), 1u);
  EXPECT_EQ(pool.evictions(), 1u);

  // The parked connection is reused, and a deliberate discard evicts it.
  ConnectionPool::Lease c = pool.checkout(shard->port(), kPoolTimeout);
  EXPECT_TRUE(c.reused);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(c.client->query(request).ok);
  pool.discard(std::move(c));
  EXPECT_EQ(pool.idle(shard->port()), 0u);
  EXPECT_EQ(pool.evictions(), 2u);
  EXPECT_EQ(pool.misses(), 2u);  // reuse and discard dialed nothing new.
  shard->stop();
}

TEST(ConnectionPool, StaleSocketIsDetectedAndReconnectedAfterRestart) {
  auto shard = pool_shard();
  const std::uint16_t port = shard->port();
  ConnectionPool pool{PoolOptions{}};
  const Request request = make_request(QueryKind::kFleetPower, 0, 0, 0);

  ConnectionPool::Lease lease = pool.checkout(port, kPoolTimeout);
  EXPECT_TRUE(lease.client->query(request).ok);
  pool.checkin(std::move(lease));

  // Restart the shard on the same port: the parked socket is now stale —
  // alive as a file descriptor, dead as a connection.
  shard->stop();
  shard = pool_shard(port);
  ASSERT_EQ(shard->port(), port);

  lease = pool.checkout(port, kPoolTimeout);
  EXPECT_TRUE(lease.reused);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_THROW((void)lease.client->query(request), std::runtime_error);

  // reconnect() replaces the stale socket with a fresh dial; it counts as a
  // reconnect, not a miss, and the stale socket counts as an eviction.
  lease = pool.reconnect(std::move(lease), kPoolTimeout);
  EXPECT_FALSE(lease.reused);
  EXPECT_TRUE(lease.client->query(request).ok);
  pool.checkin(std::move(lease));
  EXPECT_EQ(pool.reconnects(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_GE(pool.evictions(), 1u);
  shard->stop();
}

TEST(Federation, PooledFanoutReusesConnectionsAndCountsExactlyOnce) {
  Federation fed(/*ticks=*/4);
  ASSERT_NE(fed.frontend->pool(), nullptr);
  EXPECT_GT(fed.frontend->dispatch_workers(), 0u);

  const Request request =
      make_request(QueryKind::kTenantEnergy, 0, 0, 1, 1.0, 3.0);
  const Response first = fed.frontend->execute(request);
  ASSERT_TRUE(first.ok) << first.message;
  for (int i = 0; i < 4; ++i) {
    const Response again = fed.frontend->execute(request);
    EXPECT_EQ(serve::encode_response(again), serve::encode_response(first));
  }

  // Exactly one dial per shard ever; every later leg reuses. The counter
  // families and the pool's own accounting must agree exactly — a leg is a
  // hit or a miss, never both, never neither.
  ConnectionPool& pool = *fed.frontend->pool();
  EXPECT_EQ(pool.misses(), 3u);
  EXPECT_EQ(pool.hits(), 12u);
  EXPECT_EQ(pool.reconnects(), 0u);
  EXPECT_EQ(pool.evictions(), 0u);
  EXPECT_EQ(fed.metrics.counter("vmpower_fed_pool_misses_total", "").value(),
            3u);
  EXPECT_EQ(fed.metrics.counter("vmpower_fed_pool_hits_total", "").value(),
            12u);
  EXPECT_EQ(
      fed.metrics.counter("vmpower_fed_pool_reconnects_total", "").value(),
      0u);
  EXPECT_EQ(
      fed.metrics.counter("vmpower_fed_pool_evictions_total", "").value(),
      0u);
}

TEST(Federation, PooledFrontendSurvivesAShardRestartWithoutEjection) {
  FrontendOptions options;
  options.retries = 0;
  options.health.eject_after = 1;  // any counted failure would eject.
  Federation fed(/*ticks=*/4, options);
  const Request request = make_request(QueryKind::kFleetPower, 0, 0, 0);
  ASSERT_TRUE(fed.frontend->execute(request).ok);  // pool all 3 connections.

  // Bounce fleet 2's shard on the same port.
  const std::uint16_t port = fed.shards[1]->port();
  fed.shards[1]->stop();
  InProcessShardOptions shard_options;
  shard_options.fleet = 2;
  shard_options.engine = exact_tou_options();
  shard_options.server = quick_server();
  shard_options.server.port = port;
  fed.shards[1] = std::make_unique<InProcessShard>(shard_options);
  for (int t = 1; t <= 4; ++t)
    fed.shards[1]->store().publish(shard_at(2, t));

  // The pooled leg trips over its stale socket, reconnects once, and the
  // fan-out stays complete: a restart costs one reconnect, not a health
  // failure — with eject_after = 1 an uncounted failure is observable as
  // the shard staying admitted.
  const Response response = fed.frontend->execute(request);
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_TRUE(response.complete);
  EXPECT_FALSE(fed.frontend->health().ejected(2));
  EXPECT_EQ(fed.frontend->pool()->reconnects(), 1u);
}

TEST(Federation, TimedOutPooledConnectionIsDiscardedNotReused) {
  // A timed-out connection is indeterminate — the response may still be in
  // flight — so it must never be parked for reuse.
  InProcessShardOptions shard_options;
  shard_options.fleet = 1;
  shard_options.engine = exact_tou_options();
  shard_options.server = quick_server();
  shard_options.server.worker_delay = std::chrono::milliseconds(300);
  InProcessShard shard(shard_options);
  shard.store().publish(shard_at(1, 1.0));

  FrontendOptions options;
  options.deadline = std::chrono::milliseconds(50);
  options.retries = 0;
  FederationFrontend frontend(ShardMap({FleetShard{1, {shard.port()}}}),
                              options);
  const Response response =
      frontend.execute(make_request(QueryKind::kFleetPower, 0, 0, 0));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::kUnavailable);
  ASSERT_NE(frontend.pool(), nullptr);
  EXPECT_EQ(frontend.pool()->idle(shard.port()), 0u);
  EXPECT_GE(frontend.pool()->evictions(), 1u);
  EXPECT_EQ(frontend.pool()->reconnects(), 0u);  // slow is not stale.
  shard.stop();
}

TEST(Federation, PooledAndUnpooledRollupsAreByteIdentical) {
  Federation fed(/*ticks=*/4);  // pooled by default.
  std::vector<FleetShard> mapped;
  for (const auto& shard : fed.shards)
    mapped.push_back(FleetShard{shard->fleet(), {shard->port()}});
  FrontendOptions legacy;
  legacy.pooled = false;
  FederationFrontend unpooled(ShardMap(std::move(mapped)), legacy);
  EXPECT_EQ(unpooled.pool(), nullptr);
  EXPECT_EQ(unpooled.dispatch_workers(), 0u);

  const std::vector<Request> requests = {
      make_request(QueryKind::kFleetPower, 0, 0, 0),
      make_request(QueryKind::kVmEnergy, 2, 1, 0, 1.0, 4.0),
      make_request(QueryKind::kTenantPower, 0, 0, 2),
      make_request(QueryKind::kTenantEnergy, 0, 0, 1, 1.0, 3.0),
      make_request(QueryKind::kTenantCost, 0, 0, 2, 1.0, 4.0),
      make_request(QueryKind::kVmPower, 2, 1, 0),
  };
  for (const Request& request : requests) {
    const Response pooled = fed.frontend->execute(request);
    const Response direct = unpooled.execute(request);
    ASSERT_TRUE(pooled.ok) << pooled.message;
    EXPECT_EQ(serve::encode_response(pooled), serve::encode_response(direct));
    EXPECT_EQ(serve::format_response_text(pooled),
              serve::format_response_text(direct));
  }
}

TEST(Federation, HedgedLegsUseThePoolWithoutSharingAConnection) {
  // Slow primary, fast replica, hedging on, pooled transport: the hedge leg
  // must check out its own connection (checkout removes it from the idle
  // list, so concurrent legs cannot alias), and both legs' connections are
  // accounted exactly once.
  InProcessShardOptions shard_options;
  shard_options.fleet = 1;
  shard_options.engine = exact_tou_options();
  shard_options.server = quick_server();
  shard_options.server.worker_delay = std::chrono::milliseconds(200);
  shard_options.replica = quick_server();
  InProcessShard shard(shard_options);
  shard.store().publish(shard_at(1, 1.0));

  FrontendOptions options;
  options.deadline = std::chrono::milliseconds(2000);
  options.retries = 0;
  options.hedge = true;
  options.hedge_delay = std::chrono::milliseconds(20);
  FederationFrontend frontend(
      ShardMap({FleetShard{1, {shard.port(), shard.replica_port()}}}),
      options);

  const Response response =
      frontend.execute(make_request(QueryKind::kFleetPower, 0, 0, 0));
  ASSERT_TRUE(response.ok) << response.message;
  EXPECT_EQ(response.values.at(0), 3.0);

  // Primary and replica are distinct endpoints, and neither had an idle
  // connection: both legs dialed. Wait out the stray primary leg (bounded
  // by its 200 ms stall), then both connections must be parked — one per
  // endpoint, none shared, none lost.
  ConnectionPool& pool = *frontend.pool();
  EXPECT_EQ(pool.misses(), 2u);
  EXPECT_EQ(pool.hits(), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((pool.idle(shard.port()) + pool.idle(shard.replica_port())) < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(pool.idle(shard.port()), 1u);
  EXPECT_EQ(pool.idle(shard.replica_port()), 1u);

  // A second hedged query reuses both parked connections.
  const Response again =
      frontend.execute(make_request(QueryKind::kFleetPower, 0, 0, 0));
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(serve::encode_response(again), serve::encode_response(response));
  EXPECT_EQ(pool.misses(), 2u);
  shard.stop();
}

}  // namespace
}  // namespace vmp::federate
