#include "core/linear_approx.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace vmp::core {
namespace {

using common::Component;
using common::StateVector;

StateVector cpu_mem(double cpu, double mem) {
  StateVector s = StateVector::cpu_only(cpu);
  s[Component::kMemory] = mem;
  return s;
}

// Builds a table for one VHC whose true law is power = w_cpu * cpu.
VscTable linear_cpu_table(double w_cpu, std::size_t samples, double noise_sigma,
                          std::uint64_t seed) {
  VscTable table(1, 0.01);
  util::Rng rng(seed);
  for (std::size_t k = 0; k < samples; ++k) {
    const double cpu = rng.uniform(0.0, 4.0);
    const double power =
        std::max(0.0, w_cpu * cpu + rng.normal(0.0, noise_sigma));
    table.record(0b1, {{StateVector::cpu_only(cpu)}}, power);
  }
  return table;
}

TEST(VhcLinearApprox, RecoversPlantedCpuWeight) {
  const auto table = linear_cpu_table(13.15, 400, 0.0, 1);
  const auto approx = VhcLinearApprox::fit(table);
  EXPECT_TRUE(approx.has_combo(0b1));
  EXPECT_NEAR(approx.weights(0b1)[0], 13.15, 0.01);
  // The 0.01 state quantization alone leaves a ~0.04 W residual.
  EXPECT_NEAR(approx.fit_rmse(0b1), 0.0, 0.06);
}

TEST(VhcLinearApprox, NoiseAveragesOut) {
  const auto table = linear_cpu_table(10.0, 2000, 0.5, 2);
  const auto approx = VhcLinearApprox::fit(table);
  EXPECT_NEAR(approx.weights(0b1)[0], 10.0, 0.1);
  EXPECT_NEAR(approx.fit_rmse(0b1), 0.5, 0.1);
}

TEST(VhcLinearApprox, PredictIsDotProduct) {
  const auto table = linear_cpu_table(10.0, 200, 0.0, 3);
  const auto approx = VhcLinearApprox::fit(table);
  EXPECT_NEAR(approx.predict(0b1, {{StateVector::cpu_only(2.5)}}), 25.0, 0.05);
  EXPECT_DOUBLE_EQ(approx.predict(0, {{StateVector::zero()}}), 0.0);
}

TEST(VhcLinearApprox, MultiComponentFit) {
  VscTable table(1, 0.01);
  util::Rng rng(4);
  for (int k = 0; k < 500; ++k) {
    const double cpu = rng.uniform(0.0, 2.0);
    const double mem = rng.uniform(0.0, 1.5);
    table.record(0b1, {{cpu_mem(cpu, mem)}}, 13.0 * cpu + 6.0 * mem);
  }
  const auto approx = VhcLinearApprox::fit(table);
  const auto w = approx.weights(0b1);
  EXPECT_NEAR(w[0], 13.0, 0.05);
  EXPECT_NEAR(w[1], 6.0, 0.05);
  EXPECT_NEAR(approx.predict(0b1, {{cpu_mem(1.0, 1.0)}}), 19.0, 0.1);
}

TEST(VhcLinearApprox, TwoVhcJointFit) {
  // Combo {0,1}: power = 13 * v_0.cpu + 95 * v_1.cpu.
  VscTable table(2, 0.01);
  util::Rng rng(5);
  for (int k = 0; k < 600; ++k) {
    const double c0 = rng.uniform(0.0, 2.0);
    const double c1 = rng.uniform(0.0, 1.0);
    table.record(
        0b11, {{StateVector::cpu_only(c0), StateVector::cpu_only(c1)}},
        13.0 * c0 + 95.0 * c1);
  }
  const auto approx = VhcLinearApprox::fit(table);
  const auto w = approx.weights(0b11);
  EXPECT_NEAR(w[0], 13.0, 0.1);                             // VHC 0 cpu
  EXPECT_NEAR(w[common::kNumComponents], 95.0, 0.2);        // VHC 1 cpu
}

TEST(VhcLinearApprox, DeadComponentsGetZeroWeight) {
  // CPU-only training data (the paper's synthetic benchmark): memory/disk
  // columns are identically zero and must not produce spurious weights.
  const auto table = linear_cpu_table(13.0, 300, 0.0, 6);
  const auto approx = VhcLinearApprox::fit(table);
  const auto w = approx.weights(0b1);
  EXPECT_NEAR(w[1], 0.0, 1e-6);
  EXPECT_NEAR(w[2], 0.0, 1e-6);
  EXPECT_NEAR(w[3], 0.0, 1e-6);
}

TEST(VhcLinearApprox, FallbackComposesFittedSubCombos) {
  // Fit combos {0} and {1} separately; predicting the unmeasured combo
  // {0,1} must sum the two sub-models.
  VscTable table(2, 0.01);
  util::Rng rng(7);
  for (int k = 0; k < 300; ++k) {
    const double c = rng.uniform(0.0, 2.0);
    table.record(0b01, {{StateVector::cpu_only(c), StateVector::zero()}},
                 13.0 * c);
    table.record(0b10, {{StateVector::zero(), StateVector::cpu_only(c)}},
                 23.0 * c);
  }
  const auto approx = VhcLinearApprox::fit(table);
  EXPECT_FALSE(approx.has_combo(0b11));
  const double prediction = approx.predict(
      0b11, {{StateVector::cpu_only(1.0), StateVector::cpu_only(1.0)}});
  EXPECT_NEAR(prediction, 36.0, 0.2);
}

TEST(VhcLinearApprox, UncoverableComboThrows) {
  const auto table = linear_cpu_table(13.0, 100, 0.0, 8);
  const auto approx = VhcLinearApprox::fit(table);  // only combo {0} of 1 VHC
  VscTable two(2, 0.01);
  two.record(0b01, {{StateVector::cpu_only(1.0), StateVector::zero()}}, 13.0);
  const auto approx2 = VhcLinearApprox::fit(two);
  EXPECT_THROW(approx2.predict(0b10, {{StateVector::zero(),
                                       StateVector::cpu_only(1.0)}}),
               std::out_of_range);
}

TEST(VhcLinearApprox, Validation) {
  const VscTable empty(1, 0.01);
  EXPECT_THROW(VhcLinearApprox::fit(empty), std::invalid_argument);
  const auto table = linear_cpu_table(13.0, 50, 0.0, 9);
  EXPECT_THROW(VhcLinearApprox::fit(table, -1.0), std::invalid_argument);
  const auto approx = VhcLinearApprox::fit(table);
  EXPECT_THROW(approx.weights(0b10), std::out_of_range);
  EXPECT_THROW(approx.fit_rmse(0b10), std::out_of_range);
  EXPECT_THROW(approx.predict(0b1, {}), std::invalid_argument);
}

TEST(VhcLinearApprox, FittedCombosSorted) {
  VscTable table(2, 0.01);
  table.record(0b10, {{StateVector::zero(), StateVector::cpu_only(1.0)}}, 9.0);
  table.record(0b01, {{StateVector::cpu_only(1.0), StateVector::zero()}}, 5.0);
  const auto approx = VhcLinearApprox::fit(table);
  const auto combos = approx.fitted_combos();
  ASSERT_EQ(combos.size(), 2u);
  EXPECT_EQ(combos[0], 0b01u);
  EXPECT_EQ(combos[1], 0b10u);
}

}  // namespace
}  // namespace vmp::core
