#include "core/serialization.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/rng.hpp"

namespace vmp::core {
namespace {

using common::StateVector;

class SerializationTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("vmp_serial_" + std::to_string(::getpid()) + ".dat");

  void TearDown() override { std::filesystem::remove(path_); }

  static VscTable sample_table() {
    VscTable table(2, 0.01);
    util::Rng rng(3);
    for (int k = 0; k < 50; ++k) {
      const double c0 = rng.uniform(0.0, 2.0);
      const double c1 = rng.uniform(0.0, 1.0);
      StateVector s0 = StateVector::cpu_only(c0);
      s0[common::Component::kMemory] = rng.uniform();
      table.record(0b01, {{s0, StateVector::zero()}}, 13.0 * c0);
      table.record(0b11,
                   {{StateVector::cpu_only(c0), StateVector::cpu_only(c1)}},
                   13.0 * c0 + 24.0 * c1);
    }
    return table;
  }
};

TEST_F(SerializationTest, TableRoundTrip) {
  const VscTable original = sample_table();
  save_table(original, path_);
  const VscTable loaded = load_table(path_);

  EXPECT_EQ(loaded.num_vhcs(), original.num_vhcs());
  EXPECT_DOUBLE_EQ(loaded.resolution(), original.resolution());
  EXPECT_EQ(loaded.total_samples(), original.total_samples());
  for (const VhcComboMask combo : original.combos()) {
    const auto& a = original.samples(combo);
    const auto& b = loaded.samples(combo);
    ASSERT_EQ(a.size(), b.size()) << "combo " << combo;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_NEAR(a[k].power_w, b[k].power_w, 1e-9);
      for (std::size_t j = 0; j < original.num_vhcs(); ++j)
        EXPECT_NEAR(a[k].vhc_states[j].max_abs_diff(b[k].vhc_states[j]), 0.0,
                    1e-9);
    }
  }
}

TEST_F(SerializationTest, ApproximationRoundTripPredictsIdentically) {
  const VscTable table = sample_table();
  const auto original = VhcLinearApprox::fit(table);
  save_approximation(original, path_);
  const auto loaded = load_approximation(path_);

  EXPECT_EQ(loaded.num_vhcs(), original.num_vhcs());
  EXPECT_EQ(loaded.fitted_combos(), original.fitted_combos());
  util::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<StateVector> states = {
        StateVector::cpu_only(rng.uniform(0.0, 2.0)),
        StateVector::cpu_only(rng.uniform(0.0, 1.0))};
    for (const VhcComboMask combo : original.fitted_combos())
      EXPECT_NEAR(loaded.predict(combo, states),
                  original.predict(combo, states), 1e-9);
  }
  for (const VhcComboMask combo : original.fitted_combos()) {
    EXPECT_NEAR(loaded.fit_rmse(combo), original.fit_rmse(combo), 1e-9);
  }
}

TEST_F(SerializationTest, TrainedFromLoadedTableMatchesDirectFit) {
  const VscTable table = sample_table();
  save_table(table, path_);
  const auto from_disk = VhcLinearApprox::fit(load_table(path_));
  const auto direct = VhcLinearApprox::fit(table);
  for (const VhcComboMask combo : direct.fitted_combos()) {
    const auto a = direct.weights(combo);
    const auto b = from_disk.weights(combo);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
  }
}

TEST_F(SerializationTest, BadMagicRejected) {
  {
    std::ofstream out(path_);
    out << "not-a-vmpower-file v9 num_vhcs=2 resolution=0.01\n";
  }
  EXPECT_THROW(load_table(path_), std::runtime_error);
  EXPECT_THROW(load_approximation(path_), std::runtime_error);
}

TEST_F(SerializationTest, TruncatedRowRejected) {
  {
    std::ofstream out(path_);
    out << "vmpower-vsc-table v1 num_vhcs=2 resolution=0.01\n";
    out << "1 0.5 0 0 0\n";  // missing the second VHC's state and power
  }
  EXPECT_THROW(load_table(path_), std::runtime_error);
}

TEST_F(SerializationTest, MissingFileRejected) {
  EXPECT_THROW(load_table(path_.string() + ".nope"), std::runtime_error);
  EXPECT_THROW(load_approximation(path_.string() + ".nope"),
               std::runtime_error);
}

TEST(FromModels, Validation) {
  VhcLinearApprox::ComboModelData ok{
      0b1, std::vector<double>(common::kNumComponents, 1.0), 0.0, 10};
  EXPECT_NO_THROW(VhcLinearApprox::from_models(1, {{ok}}));
  // Wrong weight vector length.
  VhcLinearApprox::ComboModelData bad = ok;
  bad.weights.pop_back();
  EXPECT_THROW(VhcLinearApprox::from_models(1, {{bad}}), std::invalid_argument);
  // Combo beyond the universe.
  bad = ok;
  bad.combo = 0b10;
  EXPECT_THROW(VhcLinearApprox::from_models(1, {{bad}}), std::invalid_argument);
  // Duplicate combos.
  EXPECT_THROW(VhcLinearApprox::from_models(1, {{ok, ok}}),
               std::invalid_argument);
  // Empty model set / bad universe size.
  EXPECT_THROW(VhcLinearApprox::from_models(1, {}), std::invalid_argument);
  EXPECT_THROW(VhcLinearApprox::from_models(0, {{ok}}), std::invalid_argument);
}

}  // namespace
}  // namespace vmp::core
