#include "workload/spec_suite.hpp"

#include <gtest/gtest.h>

namespace vmp::wl {
namespace {

TEST(SpecSuite, SubsetMatchesTableV) {
  const auto subset = spec_subset();
  ASSERT_EQ(subset.size(), 7u);
  EXPECT_STREQ(to_string(subset[0]), "gcc");
  EXPECT_STREQ(to_string(subset[3]), "omnetpp");
  EXPECT_STREQ(to_string(subset[6]), "tonto");
}

TEST(SpecSuite, IntCodesRunCoolerThanFpCodes) {
  // SPECint mixes draw less power per unit utilization than the calibration
  // mix; SPECfp draw more — the signature that breaks the linear fit.
  for (SpecBenchmark b : {SpecBenchmark::kGcc, SpecBenchmark::kGobmk,
                          SpecBenchmark::kSjeng, SpecBenchmark::kOmnetpp})
    EXPECT_LT(spec_profile(b).power_intensity, 1.0) << to_string(b);
  for (SpecBenchmark b :
       {SpecBenchmark::kNamd, SpecBenchmark::kWrf, SpecBenchmark::kTonto})
    EXPECT_GT(spec_profile(b).power_intensity, 1.0) << to_string(b);
}

TEST(SpecSuite, MemoryBoundCodesCarryMemoryState) {
  EXPECT_GT(spec_profile(SpecBenchmark::kOmnetpp).memory_util, 0.4);
  EXPECT_GT(spec_profile(SpecBenchmark::kWrf).memory_util, 0.3);
  EXPECT_LT(spec_profile(SpecBenchmark::kSjeng).memory_util, 0.3);
}

TEST(SpecWorkload, StatesAlwaysNormalized) {
  for (SpecBenchmark b : spec_subset()) {
    SpecWorkload w(b, /*seed=*/17);
    for (double t = 0.0; t < 300.0; t += 1.0)
      ASSERT_TRUE(w.demand(t).is_normalized()) << to_string(b) << " t=" << t;
  }
}

TEST(SpecWorkload, MeanUtilizationNearProfileBase) {
  for (SpecBenchmark b : spec_subset()) {
    SpecWorkload w(b, /*seed=*/23);
    double sum = 0.0;
    int n = 0;
    for (double t = 0.0; t < 2000.0; t += 1.0) {
      sum += w.demand(t).cpu();
      ++n;
    }
    EXPECT_NEAR(sum / n, w.profile().base_cpu, 0.06) << to_string(b);
  }
}

TEST(SpecWorkload, PhaseStructureVisible) {
  // Within a phase the level is a plateau (plus jitter); across phases it
  // moves by up to cpu_swing.
  SpecWorkload w(SpecBenchmark::kGcc, /*seed=*/31);
  const auto profile = w.profile();
  const double u_early = w.demand(1.0).cpu();
  const double u_same_phase = w.demand(2.0).cpu();
  EXPECT_NEAR(u_early, u_same_phase, 5.0 * profile.jitter + 1e-9);
}

TEST(SpecWorkload, DifferentSeedsDifferentTraces) {
  SpecWorkload a(SpecBenchmark::kWrf, 1);
  SpecWorkload b(SpecBenchmark::kWrf, 2);
  int distinct = 0;
  for (double t = 0.0; t < 100.0; t += 1.0)
    if (a.demand(t).cpu() != b.demand(t).cpu()) ++distinct;
  EXPECT_GT(distinct, 50);
}

TEST(SpecWorkload, NameMatchesBenchmark) {
  SpecWorkload w(SpecBenchmark::kTonto, 1);
  EXPECT_EQ(w.name(), "tonto");
  const auto ptr = make_spec_workload(SpecBenchmark::kNamd, 2);
  EXPECT_EQ(ptr->name(), "namd");
}

TEST(SpecWorkload, IntensitySpreadIsModest) {
  // The residuals of Fig. 10 are a few percent, not 2x: intensities must
  // stay within a narrow band around 1.
  for (SpecBenchmark b : spec_subset()) {
    const double mu = spec_profile(b).power_intensity;
    EXPECT_GT(mu, 0.85) << to_string(b);
    EXPECT_LT(mu, 1.15) << to_string(b);
  }
}

}  // namespace
}  // namespace vmp::wl
