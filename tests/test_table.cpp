#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/logging.hpp"

namespace vmp::util {
namespace {

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, RowWidthChecked) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TablePrinter, RenderContainsAllCells) {
  TablePrinter t({"VM", "Power"});
  t.add_row({"C_VM", "10 W"});
  t.add_row({"C_VM'", "10 W"});
  const std::string out = t.render();
  EXPECT_NE(out.find("VM"), std::string::npos);
  EXPECT_NE(out.find("C_VM'"), std::string::npos);
  EXPECT_NE(out.find("10 W"), std::string::npos);
}

TEST(TablePrinter, ColumnsAlignedToWidestCell) {
  TablePrinter t({"x"});
  t.add_row({"very-long-cell"});
  const std::string out = t.render();
  // Every line (rules and rows) must have the same width.
  std::size_t line_len = std::string::npos;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    const std::size_t len = eol - pos;
    if (line_len == std::string::npos) line_len = len;
    EXPECT_EQ(len, line_len);
    pos = eol + 1;
  }
}

TEST(TablePrinter, NumericFormatters) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(10.0, 0), "10");
  EXPECT_EQ(TablePrinter::pct(0.4615, 2), "46.15%");
  EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(old_level);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_STREQ(to_string(LogLevel::kOff), "OFF");
}

TEST(Logging, FilteredMessagesDoNotCrash) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kOff);
  VMP_LOG_DEBUG("suppressed %d", 1);
  VMP_LOG_ERROR("also suppressed %s", "x");
  set_log_level(old_level);
}

}  // namespace
}  // namespace vmp::util
