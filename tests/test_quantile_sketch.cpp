#include "util/quantile_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace vmp::util {
namespace {

/// Exact quantile of a sorted sample, matching the sketch's rank convention
/// (rank = floor(q * (n - 1))).
double sorted_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1));
  return values[rank];
}

/// |estimate - truth| <= alpha * truth — the sketch's advertised bound.
void expect_within_alpha(double estimate, double truth, double alpha) {
  EXPECT_LE(std::abs(estimate - truth), alpha * truth + 1e-12)
      << "estimate " << estimate << " vs truth " << truth;
}

TEST(QuantileSketch, EmptySketchReportsZeroes) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.sum(), 0.0);
}

TEST(QuantileSketch, RejectsBadAlpha) {
  EXPECT_THROW(QuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(1.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(-0.5), std::invalid_argument);
}

TEST(QuantileSketch, SingleValueIsReturnedWithinRelativeError) {
  QuantileSketch sketch(0.01);
  sketch.record(0.125);
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    expect_within_alpha(sketch.quantile(q), 0.125, 0.01);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.125);
  EXPECT_EQ(sketch.count(), 1u);
}

TEST(QuantileSketch, UniformStreamQuantilesWithinAlphaOfSortedReference) {
  const double alpha = 0.01;
  QuantileSketch sketch(alpha);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uniform(1e-4, 2.0);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double value = uniform(rng);
    values.push_back(value);
    sketch.record(value);
  }
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999})
    expect_within_alpha(sketch.quantile(q), sorted_quantile(values, q), alpha);
}

TEST(QuantileSketch, StageLikeHeavyTailKeepsRelativeAccuracyAtBothEnds) {
  // Serve-stage shape: most probes are sub-microsecond, a tail of coalesce
  // holds reaches seconds — six orders of magnitude in one stream. A fixed
  // bucket layout would lose one end; the log sketch must hold both.
  const double alpha = 0.01;
  QuantileSketch sketch(alpha);
  std::mt19937_64 rng(13);
  std::lognormal_distribution<double> lognormal(-13.0, 3.0);
  std::vector<double> values;
  values.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    const double value = lognormal(rng);
    values.push_back(value);
    sketch.record(value);
  }
  for (const double q : {0.01, 0.50, 0.99})
    expect_within_alpha(sketch.quantile(q), sorted_quantile(values, q), alpha);
}

TEST(QuantileSketch, ZeroAndNegativeValuesLandInZeroBucket) {
  QuantileSketch sketch(0.01);
  sketch.record(0.0);
  sketch.record(-1.0);                            // defensive clamp.
  sketch.record(QuantileSketch::kMinTrackable);   // at the boundary.
  sketch.record(1.0);
  EXPECT_EQ(sketch.count(), 4u);
  // Three of four values are in the zero bucket: p50 must report 0.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  expect_within_alpha(sketch.quantile(1.0), 1.0, 0.01);
  EXPECT_EQ(sketch.bucket_count(), 1u);  // only 1.0 materialised a bucket.
}

TEST(QuantileSketch, NanIsClampedNotPropagated) {
  QuantileSketch sketch(0.01);
  sketch.record(std::nan(""));
  sketch.record(2.0);
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_FALSE(std::isnan(sketch.quantile(0.5)));
  expect_within_alpha(sketch.quantile(1.0), 2.0, 0.01);
}

TEST(QuantileSketch, MergeEqualsFeedingOneSketch) {
  const double alpha = 0.02;
  QuantileSketch merged(alpha), reference(alpha);
  QuantileSketch parts[3] = {QuantileSketch(alpha), QuantileSketch(alpha),
                             QuantileSketch(alpha)};
  std::mt19937_64 rng(23);
  std::exponential_distribution<double> exponential(50.0);
  for (int i = 0; i < 9000; ++i) {
    const double value = exponential(rng);
    reference.record(value);
    parts[i % 3].record(value);
  }
  for (const QuantileSketch& part : parts) merged.merge(part);
  EXPECT_EQ(merged.count(), reference.count());
  // Sums reassociate across the partition, so bit-equality is too strict.
  EXPECT_NEAR(merged.sum(), reference.sum(), 1e-9 * reference.sum());
  EXPECT_DOUBLE_EQ(merged.max(), reference.max());
  // Merge is exact (no re-bucketing): quantiles match to the bit, not just
  // within alpha.
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(merged.quantile(q), reference.quantile(q)) << q;
}

TEST(QuantileSketch, MergeIsAssociative) {
  const double alpha = 0.01;
  QuantileSketch a(alpha), b(alpha), c(alpha);
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> uniform(1e-6, 10.0);
  for (int i = 0; i < 2000; ++i) a.record(uniform(rng));
  for (int i = 0; i < 3000; ++i) b.record(uniform(rng));
  for (int i = 0; i < 1000; ++i) c.record(uniform(rng));

  QuantileSketch left(a);   // (a + b) + c
  left.merge(b);
  left.merge(c);
  QuantileSketch bc(b);     // a + (b + c)
  bc.merge(c);
  QuantileSketch right(a);
  right.merge(bc);

  EXPECT_EQ(left.count(), right.count());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q)) << q;
}

TEST(QuantileSketch, MergeRejectsAlphaMismatch) {
  QuantileSketch fine(0.01), coarse(0.05);
  fine.record(1.0);
  coarse.record(1.0);
  EXPECT_THROW(fine.merge(coarse), std::invalid_argument);
}

TEST(QuantileSketch, ClearResetsEverything) {
  QuantileSketch sketch(0.01);
  for (int i = 1; i <= 100; ++i) sketch.record(0.001 * i);
  sketch.clear();
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.bucket_count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.99), 0.0);
}

}  // namespace
}  // namespace vmp::util
