#include "core/accountant.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vmp::core {
namespace {

using common::StateVector;

std::vector<VmSample> two_vms() {
  return {{10, 0, StateVector::cpu_only(1.0)},
          {20, 0, StateVector::cpu_only(0.5)}};
}

TEST(EnergyAccountant, AccumulatesDynamicEnergy) {
  EnergyAccountant acc(IdleAttribution::kNone);
  const std::vector<double> phi = {10.0, 5.0};
  acc.add_sample(two_vms(), phi, 138.0, 1.0);
  acc.add_sample(two_vms(), phi, 138.0, 1.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(10), 20.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(20), 10.0);
  EXPECT_DOUBLE_EQ(acc.total_energy_j(), 30.0);
  EXPECT_DOUBLE_EQ(acc.accounted_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(99), 0.0);  // unseen id
}

TEST(EnergyAccountant, EqualShareIdleAttribution) {
  EnergyAccountant acc(IdleAttribution::kEqualShare);
  acc.add_sample(two_vms(), std::vector<double>{10.0, 5.0}, 138.0, 1.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(10), 10.0 + 69.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(20), 5.0 + 69.0);
}

TEST(EnergyAccountant, ProportionalIdleAttribution) {
  EnergyAccountant acc(IdleAttribution::kProportional);
  acc.add_sample(two_vms(), std::vector<double>{10.0, 5.0}, 30.0, 1.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(10), 10.0 + 20.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(20), 5.0 + 10.0);
}

TEST(EnergyAccountant, ProportionalDegeneratesToEqualWhenAllIdle) {
  EnergyAccountant acc(IdleAttribution::kProportional);
  acc.add_sample(two_vms(), std::vector<double>{0.0, 0.0}, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(10), 5.0);
  EXPECT_DOUBLE_EQ(acc.energy_j(20), 5.0);
}

TEST(EnergyAccountant, IdlePoliciesConserveTotalEnergy) {
  for (IdleAttribution policy :
       {IdleAttribution::kEqualShare, IdleAttribution::kProportional}) {
    EnergyAccountant acc(policy);
    acc.add_sample(two_vms(), std::vector<double>{12.0, 8.0}, 138.0, 1.0);
    EXPECT_NEAR(acc.total_energy_j(), 12.0 + 8.0 + 138.0, 1e-9)
        << to_string(policy);
  }
}

TEST(EnergyAccountant, BillAtTariff) {
  EnergyAccountant acc(IdleAttribution::kNone);
  // 1 kWh = 3.6e6 J at 100 W for 36000 s.
  const std::vector<VmSample> one = {{1, 0, StateVector::cpu_only(1.0)}};
  acc.add_sample(one, std::vector<double>{100.0}, 0.0, 36000.0);
  EXPECT_NEAR(acc.bill_usd(1, 0.10), 0.10, 1e-9);
}

TEST(EnergyAccountant, VmIdsSorted) {
  EnergyAccountant acc;
  acc.add_sample(two_vms(), std::vector<double>{1.0, 1.0}, 0.0, 1.0);
  const auto ids = acc.vm_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], 10u);
  EXPECT_EQ(ids[1], 20u);
}

TEST(EnergyAccountant, Validation) {
  EnergyAccountant acc;
  const std::vector<double> wrong = {1.0};
  EXPECT_THROW(acc.add_sample(two_vms(), wrong, 0.0, 1.0),
               std::invalid_argument);
  const std::vector<double> phi = {1.0, 1.0};
  EXPECT_THROW(acc.add_sample(two_vms(), phi, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(acc.add_sample(two_vms(), phi, -1.0, 1.0),
               std::invalid_argument);
}

TEST(IdleAttribution, Names) {
  EXPECT_STREQ(to_string(IdleAttribution::kNone), "none");
  EXPECT_STREQ(to_string(IdleAttribution::kEqualShare), "equal-share");
  EXPECT_STREQ(to_string(IdleAttribution::kProportional), "proportional");
}

}  // namespace
}  // namespace vmp::core
