
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/state_vector.cpp" "src/common/CMakeFiles/vmp_common.dir/state_vector.cpp.o" "gcc" "src/common/CMakeFiles/vmp_common.dir/state_vector.cpp.o.d"
  "/root/repo/src/common/vm_config.cpp" "src/common/CMakeFiles/vmp_common.dir/vm_config.cpp.o" "gcc" "src/common/CMakeFiles/vmp_common.dir/vm_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
