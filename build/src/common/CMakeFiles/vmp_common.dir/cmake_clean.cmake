file(REMOVE_RECURSE
  "CMakeFiles/vmp_common.dir/state_vector.cpp.o"
  "CMakeFiles/vmp_common.dir/state_vector.cpp.o.d"
  "CMakeFiles/vmp_common.dir/vm_config.cpp.o"
  "CMakeFiles/vmp_common.dir/vm_config.cpp.o.d"
  "libvmp_common.a"
  "libvmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
