# Empty dependencies file for vmp_common.
# This may be replaced when dependencies are built.
