file(REMOVE_RECURSE
  "libvmp_common.a"
)
