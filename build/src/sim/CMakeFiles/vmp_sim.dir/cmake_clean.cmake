file(REMOVE_RECURSE
  "CMakeFiles/vmp_sim.dir/cluster.cpp.o"
  "CMakeFiles/vmp_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/coalition_probe.cpp.o"
  "CMakeFiles/vmp_sim.dir/coalition_probe.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/cpu_topology.cpp.o"
  "CMakeFiles/vmp_sim.dir/cpu_topology.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/dstat.cpp.o"
  "CMakeFiles/vmp_sim.dir/dstat.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/hypervisor.cpp.o"
  "CMakeFiles/vmp_sim.dir/hypervisor.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/machine_spec.cpp.o"
  "CMakeFiles/vmp_sim.dir/machine_spec.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/msr.cpp.o"
  "CMakeFiles/vmp_sim.dir/msr.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/physical_machine.cpp.o"
  "CMakeFiles/vmp_sim.dir/physical_machine.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/power_meter.cpp.o"
  "CMakeFiles/vmp_sim.dir/power_meter.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/power_model.cpp.o"
  "CMakeFiles/vmp_sim.dir/power_model.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/rapl.cpp.o"
  "CMakeFiles/vmp_sim.dir/rapl.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/runner.cpp.o"
  "CMakeFiles/vmp_sim.dir/runner.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/scheduler.cpp.o"
  "CMakeFiles/vmp_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/vmp_sim.dir/vm.cpp.o"
  "CMakeFiles/vmp_sim.dir/vm.cpp.o.d"
  "libvmp_sim.a"
  "libvmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
