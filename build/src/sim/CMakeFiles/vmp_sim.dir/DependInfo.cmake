
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/vmp_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/coalition_probe.cpp" "src/sim/CMakeFiles/vmp_sim.dir/coalition_probe.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/coalition_probe.cpp.o.d"
  "/root/repo/src/sim/cpu_topology.cpp" "src/sim/CMakeFiles/vmp_sim.dir/cpu_topology.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/cpu_topology.cpp.o.d"
  "/root/repo/src/sim/dstat.cpp" "src/sim/CMakeFiles/vmp_sim.dir/dstat.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/dstat.cpp.o.d"
  "/root/repo/src/sim/hypervisor.cpp" "src/sim/CMakeFiles/vmp_sim.dir/hypervisor.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/hypervisor.cpp.o.d"
  "/root/repo/src/sim/machine_spec.cpp" "src/sim/CMakeFiles/vmp_sim.dir/machine_spec.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/machine_spec.cpp.o.d"
  "/root/repo/src/sim/msr.cpp" "src/sim/CMakeFiles/vmp_sim.dir/msr.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/msr.cpp.o.d"
  "/root/repo/src/sim/physical_machine.cpp" "src/sim/CMakeFiles/vmp_sim.dir/physical_machine.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/physical_machine.cpp.o.d"
  "/root/repo/src/sim/power_meter.cpp" "src/sim/CMakeFiles/vmp_sim.dir/power_meter.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/power_meter.cpp.o.d"
  "/root/repo/src/sim/power_model.cpp" "src/sim/CMakeFiles/vmp_sim.dir/power_model.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/power_model.cpp.o.d"
  "/root/repo/src/sim/rapl.cpp" "src/sim/CMakeFiles/vmp_sim.dir/rapl.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/rapl.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/sim/CMakeFiles/vmp_sim.dir/runner.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/runner.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/vmp_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/vm.cpp" "src/sim/CMakeFiles/vmp_sim.dir/vm.cpp.o" "gcc" "src/sim/CMakeFiles/vmp_sim.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vmp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
