
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accountant.cpp" "src/core/CMakeFiles/vmp_core.dir/accountant.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/accountant.cpp.o.d"
  "/root/repo/src/core/axioms.cpp" "src/core/CMakeFiles/vmp_core.dir/axioms.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/axioms.cpp.o.d"
  "/root/repo/src/core/banzhaf.cpp" "src/core/CMakeFiles/vmp_core.dir/banzhaf.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/banzhaf.cpp.o.d"
  "/root/repo/src/core/capping.cpp" "src/core/CMakeFiles/vmp_core.dir/capping.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/capping.cpp.o.d"
  "/root/repo/src/core/coalition.cpp" "src/core/CMakeFiles/vmp_core.dir/coalition.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/coalition.cpp.o.d"
  "/root/repo/src/core/collector.cpp" "src/core/CMakeFiles/vmp_core.dir/collector.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/collector.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/vmp_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/linear_approx.cpp" "src/core/CMakeFiles/vmp_core.dir/linear_approx.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/linear_approx.cpp.o.d"
  "/root/repo/src/core/monte_carlo.cpp" "src/core/CMakeFiles/vmp_core.dir/monte_carlo.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/core/multi_host.cpp" "src/core/CMakeFiles/vmp_core.dir/multi_host.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/multi_host.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/vmp_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pricing.cpp" "src/core/CMakeFiles/vmp_core.dir/pricing.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/pricing.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/core/CMakeFiles/vmp_core.dir/serialization.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/serialization.cpp.o.d"
  "/root/repo/src/core/shapley.cpp" "src/core/CMakeFiles/vmp_core.dir/shapley.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/shapley.cpp.o.d"
  "/root/repo/src/core/shared_weights.cpp" "src/core/CMakeFiles/vmp_core.dir/shared_weights.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/shared_weights.cpp.o.d"
  "/root/repo/src/core/vhc.cpp" "src/core/CMakeFiles/vmp_core.dir/vhc.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/vhc.cpp.o.d"
  "/root/repo/src/core/vsc_table.cpp" "src/core/CMakeFiles/vmp_core.dir/vsc_table.cpp.o" "gcc" "src/core/CMakeFiles/vmp_core.dir/vsc_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vmp_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
