file(REMOVE_RECURSE
  "CMakeFiles/vmp_util.dir/cli.cpp.o"
  "CMakeFiles/vmp_util.dir/cli.cpp.o.d"
  "CMakeFiles/vmp_util.dir/csv.cpp.o"
  "CMakeFiles/vmp_util.dir/csv.cpp.o.d"
  "CMakeFiles/vmp_util.dir/histogram.cpp.o"
  "CMakeFiles/vmp_util.dir/histogram.cpp.o.d"
  "CMakeFiles/vmp_util.dir/least_squares.cpp.o"
  "CMakeFiles/vmp_util.dir/least_squares.cpp.o.d"
  "CMakeFiles/vmp_util.dir/logging.cpp.o"
  "CMakeFiles/vmp_util.dir/logging.cpp.o.d"
  "CMakeFiles/vmp_util.dir/matrix.cpp.o"
  "CMakeFiles/vmp_util.dir/matrix.cpp.o.d"
  "CMakeFiles/vmp_util.dir/rng.cpp.o"
  "CMakeFiles/vmp_util.dir/rng.cpp.o.d"
  "CMakeFiles/vmp_util.dir/stats.cpp.o"
  "CMakeFiles/vmp_util.dir/stats.cpp.o.d"
  "CMakeFiles/vmp_util.dir/table.cpp.o"
  "CMakeFiles/vmp_util.dir/table.cpp.o.d"
  "CMakeFiles/vmp_util.dir/time_series.cpp.o"
  "CMakeFiles/vmp_util.dir/time_series.cpp.o.d"
  "libvmp_util.a"
  "libvmp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
