# Empty compiler generated dependencies file for vmp_baselines.
# This may be replaced when dependencies are built.
