
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/integrated_model.cpp" "src/baselines/CMakeFiles/vmp_baselines.dir/integrated_model.cpp.o" "gcc" "src/baselines/CMakeFiles/vmp_baselines.dir/integrated_model.cpp.o.d"
  "/root/repo/src/baselines/marginal.cpp" "src/baselines/CMakeFiles/vmp_baselines.dir/marginal.cpp.o" "gcc" "src/baselines/CMakeFiles/vmp_baselines.dir/marginal.cpp.o.d"
  "/root/repo/src/baselines/power_model.cpp" "src/baselines/CMakeFiles/vmp_baselines.dir/power_model.cpp.o" "gcc" "src/baselines/CMakeFiles/vmp_baselines.dir/power_model.cpp.o.d"
  "/root/repo/src/baselines/rapl_share.cpp" "src/baselines/CMakeFiles/vmp_baselines.dir/rapl_share.cpp.o" "gcc" "src/baselines/CMakeFiles/vmp_baselines.dir/rapl_share.cpp.o.d"
  "/root/repo/src/baselines/resource_usage.cpp" "src/baselines/CMakeFiles/vmp_baselines.dir/resource_usage.cpp.o" "gcc" "src/baselines/CMakeFiles/vmp_baselines.dir/resource_usage.cpp.o.d"
  "/root/repo/src/baselines/trainer.cpp" "src/baselines/CMakeFiles/vmp_baselines.dir/trainer.cpp.o" "gcc" "src/baselines/CMakeFiles/vmp_baselines.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vmp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
