file(REMOVE_RECURSE
  "CMakeFiles/vmp_baselines.dir/integrated_model.cpp.o"
  "CMakeFiles/vmp_baselines.dir/integrated_model.cpp.o.d"
  "CMakeFiles/vmp_baselines.dir/marginal.cpp.o"
  "CMakeFiles/vmp_baselines.dir/marginal.cpp.o.d"
  "CMakeFiles/vmp_baselines.dir/power_model.cpp.o"
  "CMakeFiles/vmp_baselines.dir/power_model.cpp.o.d"
  "CMakeFiles/vmp_baselines.dir/rapl_share.cpp.o"
  "CMakeFiles/vmp_baselines.dir/rapl_share.cpp.o.d"
  "CMakeFiles/vmp_baselines.dir/resource_usage.cpp.o"
  "CMakeFiles/vmp_baselines.dir/resource_usage.cpp.o.d"
  "CMakeFiles/vmp_baselines.dir/trainer.cpp.o"
  "CMakeFiles/vmp_baselines.dir/trainer.cpp.o.d"
  "libvmp_baselines.a"
  "libvmp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
