file(REMOVE_RECURSE
  "libvmp_baselines.a"
)
