file(REMOVE_RECURSE
  "CMakeFiles/vmp_workload.dir/patterns.cpp.o"
  "CMakeFiles/vmp_workload.dir/patterns.cpp.o.d"
  "CMakeFiles/vmp_workload.dir/primitives.cpp.o"
  "CMakeFiles/vmp_workload.dir/primitives.cpp.o.d"
  "CMakeFiles/vmp_workload.dir/spec_suite.cpp.o"
  "CMakeFiles/vmp_workload.dir/spec_suite.cpp.o.d"
  "CMakeFiles/vmp_workload.dir/synthetic.cpp.o"
  "CMakeFiles/vmp_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/vmp_workload.dir/trace.cpp.o"
  "CMakeFiles/vmp_workload.dir/trace.cpp.o.d"
  "CMakeFiles/vmp_workload.dir/user_pattern.cpp.o"
  "CMakeFiles/vmp_workload.dir/user_pattern.cpp.o.d"
  "CMakeFiles/vmp_workload.dir/workload.cpp.o"
  "CMakeFiles/vmp_workload.dir/workload.cpp.o.d"
  "libvmp_workload.a"
  "libvmp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
