
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/patterns.cpp" "src/workload/CMakeFiles/vmp_workload.dir/patterns.cpp.o" "gcc" "src/workload/CMakeFiles/vmp_workload.dir/patterns.cpp.o.d"
  "/root/repo/src/workload/primitives.cpp" "src/workload/CMakeFiles/vmp_workload.dir/primitives.cpp.o" "gcc" "src/workload/CMakeFiles/vmp_workload.dir/primitives.cpp.o.d"
  "/root/repo/src/workload/spec_suite.cpp" "src/workload/CMakeFiles/vmp_workload.dir/spec_suite.cpp.o" "gcc" "src/workload/CMakeFiles/vmp_workload.dir/spec_suite.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/vmp_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/vmp_workload.dir/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/vmp_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/vmp_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/user_pattern.cpp" "src/workload/CMakeFiles/vmp_workload.dir/user_pattern.cpp.o" "gcc" "src/workload/CMakeFiles/vmp_workload.dir/user_pattern.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/vmp_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/vmp_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
