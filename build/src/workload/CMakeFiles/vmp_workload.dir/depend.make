# Empty dependencies file for vmp_workload.
# This may be replaced when dependencies are built.
