file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_allocation.dir/bench_table3_allocation.cpp.o"
  "CMakeFiles/bench_table3_allocation.dir/bench_table3_allocation.cpp.o.d"
  "bench_table3_allocation"
  "bench_table3_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
