# Empty dependencies file for bench_table3_allocation.
# This may be replaced when dependencies are built.
