# Empty dependencies file for bench_table4_vm_models.
# This may be replaced when dependencies are built.
