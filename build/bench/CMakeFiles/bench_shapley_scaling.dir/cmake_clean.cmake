file(REMOVE_RECURSE
  "CMakeFiles/bench_shapley_scaling.dir/bench_shapley_scaling.cpp.o"
  "CMakeFiles/bench_shapley_scaling.dir/bench_shapley_scaling.cpp.o.d"
  "bench_shapley_scaling"
  "bench_shapley_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shapley_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
