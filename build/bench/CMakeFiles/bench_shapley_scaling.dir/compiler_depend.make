# Empty compiler generated dependencies file for bench_shapley_scaling.
# This may be replaced when dependencies are built.
