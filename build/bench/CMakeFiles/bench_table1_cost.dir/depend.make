# Empty dependencies file for bench_table1_cost.
# This may be replaced when dependencies are built.
