# Empty compiler generated dependencies file for bench_fig12_sample_allocation.
# This may be replaced when dependencies are built.
