file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sample_allocation.dir/bench_fig12_sample_allocation.cpp.o"
  "CMakeFiles/bench_fig12_sample_allocation.dir/bench_fig12_sample_allocation.cpp.o.d"
  "bench_fig12_sample_allocation"
  "bench_fig12_sample_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sample_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
