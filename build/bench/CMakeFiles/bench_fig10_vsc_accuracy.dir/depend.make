# Empty dependencies file for bench_fig10_vsc_accuracy.
# This may be replaced when dependencies are built.
