file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vhc.dir/bench_ablation_vhc.cpp.o"
  "CMakeFiles/bench_ablation_vhc.dir/bench_ablation_vhc.cpp.o.d"
  "bench_ablation_vhc"
  "bench_ablation_vhc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vhc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
