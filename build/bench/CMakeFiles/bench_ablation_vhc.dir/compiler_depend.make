# Empty compiler generated dependencies file for bench_ablation_vhc.
# This may be replaced when dependencies are built.
