# Empty dependencies file for bench_fig1_usage_patterns.
# This may be replaced when dependencies are built.
