# Empty dependencies file for bench_fig4_independent_model.
# This may be replaced when dependencies are built.
