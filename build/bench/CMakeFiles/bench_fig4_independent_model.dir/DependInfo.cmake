
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_independent_model.cpp" "bench/CMakeFiles/bench_fig4_independent_model.dir/bench_fig4_independent_model.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_independent_model.dir/bench_fig4_independent_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/vmp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vmp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
