file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_independent_model.dir/bench_fig4_independent_model.cpp.o"
  "CMakeFiles/bench_fig4_independent_model.dir/bench_fig4_independent_model.cpp.o.d"
  "bench_fig4_independent_model"
  "bench_fig4_independent_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_independent_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
