file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fairness.dir/bench_fig7_fairness.cpp.o"
  "CMakeFiles/bench_fig7_fairness.dir/bench_fig7_fairness.cpp.o.d"
  "bench_fig7_fairness"
  "bench_fig7_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
