# Empty compiler generated dependencies file for vmpower.
# This may be replaced when dependencies are built.
