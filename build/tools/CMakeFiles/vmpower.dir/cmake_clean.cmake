file(REMOVE_RECURSE
  "CMakeFiles/vmpower.dir/vmpower.cpp.o"
  "CMakeFiles/vmpower.dir/vmpower.cpp.o.d"
  "vmpower"
  "vmpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
