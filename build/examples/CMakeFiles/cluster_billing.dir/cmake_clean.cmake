file(REMOVE_RECURSE
  "CMakeFiles/cluster_billing.dir/cluster_billing.cpp.o"
  "CMakeFiles/cluster_billing.dir/cluster_billing.cpp.o.d"
  "cluster_billing"
  "cluster_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
