# Empty dependencies file for cluster_billing.
# This may be replaced when dependencies are built.
