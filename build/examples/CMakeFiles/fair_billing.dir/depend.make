# Empty dependencies file for fair_billing.
# This may be replaced when dependencies are built.
