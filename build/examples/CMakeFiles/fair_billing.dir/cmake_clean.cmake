file(REMOVE_RECURSE
  "CMakeFiles/fair_billing.dir/fair_billing.cpp.o"
  "CMakeFiles/fair_billing.dir/fair_billing.cpp.o.d"
  "fair_billing"
  "fair_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
