# Empty compiler generated dependencies file for datacenter_metering.
# This may be replaced when dependencies are built.
