file(REMOVE_RECURSE
  "CMakeFiles/datacenter_metering.dir/datacenter_metering.cpp.o"
  "CMakeFiles/datacenter_metering.dir/datacenter_metering.cpp.o.d"
  "datacenter_metering"
  "datacenter_metering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_metering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
