# Empty dependencies file for disk_array_tenant.
# This may be replaced when dependencies are built.
