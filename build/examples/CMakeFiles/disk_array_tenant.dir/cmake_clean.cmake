file(REMOVE_RECURSE
  "CMakeFiles/disk_array_tenant.dir/disk_array_tenant.cpp.o"
  "CMakeFiles/disk_array_tenant.dir/disk_array_tenant.cpp.o.d"
  "disk_array_tenant"
  "disk_array_tenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_array_tenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
