file(REMOVE_RECURSE
  "CMakeFiles/test_vhc.dir/test_vhc.cpp.o"
  "CMakeFiles/test_vhc.dir/test_vhc.cpp.o.d"
  "test_vhc"
  "test_vhc.pdb"
  "test_vhc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vhc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
