# Empty compiler generated dependencies file for test_vhc.
# This may be replaced when dependencies are built.
