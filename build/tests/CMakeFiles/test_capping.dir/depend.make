# Empty dependencies file for test_capping.
# This may be replaced when dependencies are built.
