file(REMOVE_RECURSE
  "CMakeFiles/test_power_meter.dir/test_power_meter.cpp.o"
  "CMakeFiles/test_power_meter.dir/test_power_meter.cpp.o.d"
  "test_power_meter"
  "test_power_meter.pdb"
  "test_power_meter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
