file(REMOVE_RECURSE
  "CMakeFiles/test_multi_host.dir/test_multi_host.cpp.o"
  "CMakeFiles/test_multi_host.dir/test_multi_host.cpp.o.d"
  "test_multi_host"
  "test_multi_host.pdb"
  "test_multi_host[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
