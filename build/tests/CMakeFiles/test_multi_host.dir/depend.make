# Empty dependencies file for test_multi_host.
# This may be replaced when dependencies are built.
