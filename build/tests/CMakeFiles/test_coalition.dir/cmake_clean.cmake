file(REMOVE_RECURSE
  "CMakeFiles/test_coalition.dir/test_coalition.cpp.o"
  "CMakeFiles/test_coalition.dir/test_coalition.cpp.o.d"
  "test_coalition"
  "test_coalition.pdb"
  "test_coalition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coalition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
