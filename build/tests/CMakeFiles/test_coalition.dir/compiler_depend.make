# Empty compiler generated dependencies file for test_coalition.
# This may be replaced when dependencies are built.
