# Empty dependencies file for test_axioms.
# This may be replaced when dependencies are built.
