# Empty dependencies file for test_vsc_table.
# This may be replaced when dependencies are built.
