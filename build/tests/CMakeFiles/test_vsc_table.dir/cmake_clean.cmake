file(REMOVE_RECURSE
  "CMakeFiles/test_vsc_table.dir/test_vsc_table.cpp.o"
  "CMakeFiles/test_vsc_table.dir/test_vsc_table.cpp.o.d"
  "test_vsc_table"
  "test_vsc_table.pdb"
  "test_vsc_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vsc_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
