# Empty dependencies file for test_banzhaf.
# This may be replaced when dependencies are built.
