file(REMOVE_RECURSE
  "CMakeFiles/test_banzhaf.dir/test_banzhaf.cpp.o"
  "CMakeFiles/test_banzhaf.dir/test_banzhaf.cpp.o.d"
  "test_banzhaf"
  "test_banzhaf.pdb"
  "test_banzhaf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_banzhaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
