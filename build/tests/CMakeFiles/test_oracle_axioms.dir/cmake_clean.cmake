file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_axioms.dir/test_oracle_axioms.cpp.o"
  "CMakeFiles/test_oracle_axioms.dir/test_oracle_axioms.cpp.o.d"
  "test_oracle_axioms"
  "test_oracle_axioms.pdb"
  "test_oracle_axioms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_axioms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
