# Empty compiler generated dependencies file for test_oracle_axioms.
# This may be replaced when dependencies are built.
