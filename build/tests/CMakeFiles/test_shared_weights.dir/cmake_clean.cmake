file(REMOVE_RECURSE
  "CMakeFiles/test_shared_weights.dir/test_shared_weights.cpp.o"
  "CMakeFiles/test_shared_weights.dir/test_shared_weights.cpp.o.d"
  "test_shared_weights"
  "test_shared_weights.pdb"
  "test_shared_weights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
