# Empty dependencies file for test_shared_weights.
# This may be replaced when dependencies are built.
