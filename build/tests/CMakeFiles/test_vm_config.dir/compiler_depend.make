# Empty compiler generated dependencies file for test_vm_config.
# This may be replaced when dependencies are built.
