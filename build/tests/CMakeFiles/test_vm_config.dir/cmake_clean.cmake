file(REMOVE_RECURSE
  "CMakeFiles/test_vm_config.dir/test_vm_config.cpp.o"
  "CMakeFiles/test_vm_config.dir/test_vm_config.cpp.o.d"
  "test_vm_config"
  "test_vm_config.pdb"
  "test_vm_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
