# Empty dependencies file for test_rapl_share.
# This may be replaced when dependencies are built.
