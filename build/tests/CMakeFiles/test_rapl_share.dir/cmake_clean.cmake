file(REMOVE_RECURSE
  "CMakeFiles/test_rapl_share.dir/test_rapl_share.cpp.o"
  "CMakeFiles/test_rapl_share.dir/test_rapl_share.cpp.o.d"
  "test_rapl_share"
  "test_rapl_share.pdb"
  "test_rapl_share[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rapl_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
