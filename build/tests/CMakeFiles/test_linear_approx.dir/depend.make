# Empty dependencies file for test_linear_approx.
# This may be replaced when dependencies are built.
