file(REMOVE_RECURSE
  "CMakeFiles/test_linear_approx.dir/test_linear_approx.cpp.o"
  "CMakeFiles/test_linear_approx.dir/test_linear_approx.cpp.o.d"
  "test_linear_approx"
  "test_linear_approx.pdb"
  "test_linear_approx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
