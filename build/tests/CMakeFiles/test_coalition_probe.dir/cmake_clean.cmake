file(REMOVE_RECURSE
  "CMakeFiles/test_coalition_probe.dir/test_coalition_probe.cpp.o"
  "CMakeFiles/test_coalition_probe.dir/test_coalition_probe.cpp.o.d"
  "test_coalition_probe"
  "test_coalition_probe.pdb"
  "test_coalition_probe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coalition_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
