# Empty compiler generated dependencies file for test_coalition_probe.
# This may be replaced when dependencies are built.
