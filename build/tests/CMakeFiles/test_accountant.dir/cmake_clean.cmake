file(REMOVE_RECURSE
  "CMakeFiles/test_accountant.dir/test_accountant.cpp.o"
  "CMakeFiles/test_accountant.dir/test_accountant.cpp.o.d"
  "test_accountant"
  "test_accountant.pdb"
  "test_accountant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accountant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
