// Reproduces Fig. 11: macro-level accuracy of the aggregated per-VM power
// estimates on the 5-VM evaluation fleet (2 x VM1, VM2, VM3, VM4).
//
// The summed power-model estimates drift far above the measured
// (idle-adjusted) machine power — the paper reports an average relative
// error of 56.43 % — while the Shapley-based estimates track the
// measurement exactly (Efficiency holds even with approximated v(S, C)s).
#include <cstdio>
#include <memory>
#include <numeric>

#include "baselines/power_model.hpp"
#include "baselines/trainer.hpp"
#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "sim/physical_machine.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {
      catalogue[0], catalogue[0], catalogue[1], catalogue[2], catalogue[3]};

  // Offline artifacts for both estimators.
  core::CollectionOptions options;
  options.duration_s = 600.0;
  const auto dataset = core::collect_offline_dataset(spec, fleet, options);
  core::ShapleyVhcEstimator shapley(dataset.universe, dataset.approximation);

  base::TrainingOptions train;
  train.duration_s = 600.0;
  const auto models = base::train_catalogue_models(spec, catalogue, train);
  base::PowerModelEstimator power_model(models);

  // Online: the SPEC mix on all five VMs. The paper's run stresses every VM
  // to high utilization, where the contention gap is widest.
  sim::PhysicalMachine machine(spec, 11);
  const wl::SpecBenchmark jobs[] = {
      wl::SpecBenchmark::kSjeng, wl::SpecBenchmark::kNamd,
      wl::SpecBenchmark::kGobmk, wl::SpecBenchmark::kTonto,
      wl::SpecBenchmark::kWrf};
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i], wl::make_spec_workload(jobs[i], 7100 + i));
    machine.hypervisor().start_vm(id);
  }

  util::CsvWriter csv("fig11_power.csv",
                      {"t", "measured_adjusted", "shapley_sum",
                       "power_model_sum"});
  util::RunningStats shapley_err, model_err, measured_power;
  const int horizon_s = 600;
  for (int t = 1; t <= horizon_s; ++t) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    measured_power.add(adjusted);

    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});

    const auto phi_shapley = shapley.estimate(samples, adjusted);
    const auto phi_model = power_model.estimate(samples, adjusted);
    const double sum_shapley =
        std::accumulate(phi_shapley.begin(), phi_shapley.end(), 0.0);
    const double sum_model =
        std::accumulate(phi_model.begin(), phi_model.end(), 0.0);

    shapley_err.add(util::relative_error(sum_shapley, adjusted));
    model_err.add(util::relative_error(sum_model, adjusted));
    csv.write_row(std::vector<double>{static_cast<double>(t), adjusted,
                                      sum_shapley, sum_model});

    if (t <= 5 || t % 120 == 0)
      std::printf("t=%4ds  measured=%6.1f W  Shapley sum=%6.1f W  "
                  "power-model sum=%6.1f W\n",
                  t, adjusted, sum_shapley, sum_model);
  }

  util::print_banner("Fig. 11: aggregated power estimation accuracy");
  util::TablePrinter table({"estimator", "avg relative error", "paper"});
  table.add_row({"Shapley value-based",
                 util::TablePrinter::pct(shapley_err.mean(), 3),
                 "0% (always consistent)"});
  table.add_row({"power model-based",
                 util::TablePrinter::pct(model_err.mean(), 2), "56.43%"});
  table.print();
  std::printf("\nmean measured adjusted power: %.1f W over %d s; series "
              "written to\nfig11_power.csv. Shapley satisfies Efficiency even "
              "though its v(S,C) inputs\nare approximations (Sec. VII-C).\n",
              measured_power.mean(), horizon_s);
  return 0;
}
