// Reproduces Fig. 4: independent per-VM power models break under
// co-location.
//
// Two identical 1-vCPU VMs run a fully CPU-bound float job in sequence. The
// per-VM model trained from the first VM's marginal contribution predicts
// the same wattage for the second VM, but hyper-threading contention makes
// the second VM add much less. Paper: relative error 25.22 % on the Pentium
// and 46.15 % on the Xeon.
#include <cstdio>
#include <memory>

#include "common/vm_config.hpp"
#include "sim/physical_machine.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/synthetic.hpp"

using namespace vmp;

namespace {

struct SequenceResult {
  double idle_w = 0.0;
  double first_marginal_w = 0.0;
  double second_marginal_w = 0.0;
};

SequenceResult run_sequence(sim::MachineSpec spec, std::uint64_t seed) {
  // The paper's platform co-scheduled the two vCPUs onto one physical core
  // (that is what its meter recorded); pin the scheduler accordingly.
  spec.pack_affinity = 1.0;
  spec.affinity_jitter = 0.0;
  sim::PhysicalMachine machine(spec, seed);
  const auto a = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::BcFloatLoop>());
  const auto b = machine.hypervisor().create_vm(
      common::demo_c_vm(), std::make_unique<wl::BcFloatLoop>());

  const auto mean_power = [&](double seconds) {
    const auto trace = sim::run_scenario(machine, seconds);
    return util::mean(trace.measured_power.values());
  };
  SequenceResult result;
  result.idle_w = mean_power(60.0);
  machine.hypervisor().start_vm(a);
  const double with_one = mean_power(60.0);
  machine.hypervisor().start_vm(b);
  const double with_both = mean_power(60.0);
  result.first_marginal_w = with_one - result.idle_w;
  result.second_marginal_w = with_both - with_one;
  return result;
}

}  // namespace

int main() {
  util::print_banner(
      "Fig. 4: power estimation using independent VM power models");

  util::TablePrinter table({"platform", "idle (W)", "1st VM adds (W)",
                            "2nd VM adds (W)", "model predicts (W)",
                            "relative error", "paper error"});
  struct Platform {
    const char* paper_error;
    sim::MachineSpec spec;
  };
  const Platform platforms[] = {
      {"25.22%", sim::pentium_desktop()},
      {"46.15%", sim::xeon_prototype()},
  };
  for (const Platform& platform : platforms) {
    const SequenceResult r = run_sequence(platform.spec, 7);
    // The per-VM model (Eq. 2) is trained on the first VM's marginal
    // contribution, so it predicts the same wattage for the second VM.
    const double predicted = r.first_marginal_w;
    const double error =
        (predicted - r.second_marginal_w) / predicted;
    table.add_row({platform.spec.name, util::TablePrinter::num(r.idle_w, 1),
                   util::TablePrinter::num(r.first_marginal_w, 2),
                   util::TablePrinter::num(r.second_marginal_w, 2),
                   util::TablePrinter::num(predicted, 2),
                   util::TablePrinter::pct(error, 2), platform.paper_error});
  }
  table.print();

  std::printf("\npaper (Xeon): first VM brings ~13 W, the second only ~7 W; "
              "the model\npredicts 13 W for both -> 46.15%% error. The order "
              "of activation does not\nmatter (we observed the same swapping "
              "the VMs). Cause: hyper-threading\nresource competition "
              "(Sec. III-D).\n");
  return 0;
}
