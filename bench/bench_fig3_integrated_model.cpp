// Reproduces Fig. 3: a whole-machine (integrated) linear power model trained
// over the summed CPU utilization of two VMs is accurate at machine level.
//
// Paper: p' = 9.49 u' + 138 with an average relative error of 2.07 %. Our
// simulated Xeon yields the same structure (slope ~11.8 W per summed-util
// unit at its pack affinity, intercept = the 138 W idle floor) and a ~1-2 %
// held-out error.
#include <cstdio>
#include <memory>

#include "baselines/integrated_model.hpp"
#include "common/vm_config.hpp"
#include "sim/physical_machine.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();

  base::IntegratedTrainingOptions options;
  options.duration_s = 600.0;
  const base::IntegratedModel model =
      base::train_integrated_model(spec, common::demo_c_vm(), 2, options);

  std::printf("== Fig. 3: integrated VM power model ==\n");
  std::printf("fitted model : p' = %.2f u' + %.2f\n", model.slope_w,
              model.idle_w);
  std::printf("paper's model: p' = 9.49 u' + 138 (their Xeon; slope depends "
              "on platform)\n");

  // Held-out validation run with fresh random workloads.
  sim::PhysicalMachine machine(spec, 555);
  for (int i = 0; i < 2; ++i) {
    const auto id = machine.hypervisor().create_vm(
        common::demo_c_vm(), std::make_unique<wl::SyntheticRandomCpu>(808 + i));
    machine.hypervisor().start_vm(id);
  }
  const sim::ScenarioTrace trace = sim::run_scenario(machine, 600.0);
  const double error = base::integrated_model_error(model, trace);

  std::printf("\nheld-out machine-level average relative error: %.2f%%\n",
              100.0 * error);
  std::printf("paper: 2.07%% -- the integrated model is accurate at machine "
              "level\n");
  std::printf("(contrast with bench_fig4: the same training procedure fails "
              "per-VM).\n");
  return 0;
}
