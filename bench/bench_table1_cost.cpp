// Reproduces Table I: yearly electricity cost vs IT hardware cost for the
// CPU backing a mid-level (16 vCPU) AWS instance, at 2015 US and German
// retail tariffs.
//
// Paper values: General Purpose $100.74 / $193.52; Compute Optimized
// $105.15 / $201.94; electricity is the same order as the amortized hardware.
#include <cstdio>

#include "core/pricing.hpp"
#include "util/table.hpp"

using namespace vmp;

int main() {
  util::print_banner(
      "Table I: resource costs to support a mid-level VM in AWS, per year");
  std::printf("tariffs: USA $%.2f/kWh, Germany $%.4f/kWh (2015 retail)\n",
              core::kUsTariffUsdPerKwh, core::kGermanyTariffUsdPerKwh);

  util::TablePrinter table({"Instance Type", "CPU TDP (W)", "Elec. USA ($)",
                            "Elec. Germany ($)", "CPU ($)", "RAM ($)",
                            "SSD ($)"});
  for (const core::InstanceCostRow& row : core::aws_instance_cost_table()) {
    table.add_row({row.instance_type, util::TablePrinter::num(row.cpu_tdp_w, 0),
                   util::TablePrinter::num(row.electricity_usa, 2),
                   util::TablePrinter::num(row.electricity_germany, 2),
                   util::TablePrinter::num(row.cpu_cost, 1),
                   util::TablePrinter::num(row.ram_cost, 0),
                   util::TablePrinter::num(row.ssd_cost, 0)});
  }
  table.print();

  std::printf("\npaper reference row (General Purpose): $100.74 USA / "
              "$193.52 Germany\n");
  std::printf("take-away: electricity cost is chasing the IT hardware cost, "
              "motivating\nenergy-metered VM pricing.\n");
  return 0;
}
