// Fleet engine scaling: throughput vs. thread count vs. fleet size.
//
// The Shapley value's Additivity axiom makes the per-host games independent,
// so fleet metering should scale with worker threads until the machine runs
// out of cores (the aggregation thread serializes only the cheap roll-up).
// This bench drives FleetEngine over a hosts x threads grid and reports
// host-ticks/s — one host-tick being one complete Fig. 8 online step (sim
// advance + meter read + Shapley estimate + ledger roll-up) for one host.
// Thread counts beyond the hardware's cores measure oversubscription, not
// speedup; the table prints the detected core count for context.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "fleet/engine.hpp"
#include "util/table.hpp"

using namespace vmp;

namespace {

double run_once(const core::OfflineDataset& dataset,
                const std::vector<common::VmConfig>& fleet, std::size_t hosts,
                std::size_t threads, std::uint64_t ticks) {
  fleet::FleetOptions options;
  options.hosts = hosts;
  options.threads = threads;
  options.fleet_per_host = fleet;
  options.seed = 11;
  const auto start = std::chrono::steady_clock::now();
  fleet::FleetEngine engine(options, dataset);
  engine.run(ticks);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  const std::vector<common::VmConfig> fleet = {common::paper_vm_type(1),
                                               common::paper_vm_type(2)};
  core::CollectionOptions collect;
  collect.duration_s = 60.0;
  const auto dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), fleet, collect);

  constexpr std::uint64_t kTicks = 200;
  const std::size_t host_counts[] = {2, 4, 8, 16};
  const std::size_t thread_counts[] = {1, 2, 4};

  util::print_banner("fleet engine scaling (200 ticks, 2 VMs/host)");
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  util::TablePrinter table(
      {"hosts", "threads", "wall (ms)", "host-ticks/s", "speedup vs 1T"});
  for (const std::size_t hosts : host_counts) {
    double serial_wall = 0.0;
    for (const std::size_t threads : thread_counts) {
      const double wall = run_once(dataset, fleet, hosts, threads, kTicks);
      if (threads == 1) serial_wall = wall;
      table.add_row({std::to_string(hosts), std::to_string(threads),
                     util::TablePrinter::num(wall * 1e3, 1),
                     util::TablePrinter::num(
                         static_cast<double>(hosts * kTicks) / wall, 0),
                     util::TablePrinter::num(serial_wall / wall, 2)});
    }
  }
  table.print();
  std::printf("determinism contract: the tenant ledgers of every cell in one "
              "hosts row are byte-identical (see test_fleet).\n");
  return 0;
}
