// Fleet engine scaling: throughput vs. thread count vs. fleet size.
//
// The Shapley value's Additivity axiom makes the per-host games independent,
// so fleet metering should scale with worker threads until the machine runs
// out of cores (the aggregation thread serializes only the cheap roll-up).
// This bench drives FleetEngine over a hosts x threads grid and reports
// host-ticks/s — one host-tick being one complete Fig. 8 online step (sim
// advance + meter read + Shapley estimate + ledger roll-up) for one host.
// Thread counts beyond the hardware's cores measure oversubscription, not
// speedup; the table prints the detected core count for context.
//
// The second grid packs 8 VMs of three types onto each host — the shape the
// symmetry-collapsed estimator kernel is built for (duplicated VM types keep
// the per-tick game at compositions, not 2^8 masks).
//
// Pass --quick for the CI smoke configuration: a trimmed grid and tick count
// that finishes in seconds while still exercising every code path.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "fleet/engine.hpp"
#include "util/table.hpp"

using namespace vmp;

namespace {

double run_once(const core::OfflineDataset& dataset,
                const std::vector<common::VmConfig>& fleet, std::size_t hosts,
                std::size_t threads, std::uint64_t ticks) {
  fleet::FleetOptions options;
  options.hosts = hosts;
  options.threads = threads;
  options.fleet_per_host = fleet;
  options.seed = 11;
  const auto start = std::chrono::steady_clock::now();
  fleet::FleetEngine engine(options, dataset);
  engine.run(ticks);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void run_grid(const char* banner, const core::OfflineDataset& dataset,
              const std::vector<common::VmConfig>& fleet,
              std::span<const std::size_t> host_counts,
              std::span<const std::size_t> thread_counts,
              std::uint64_t ticks) {
  util::print_banner(banner);
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  util::TablePrinter table(
      {"hosts", "threads", "wall (ms)", "host-ticks/s", "speedup vs 1T"});
  for (const std::size_t hosts : host_counts) {
    double serial_wall = 0.0;
    for (const std::size_t threads : thread_counts) {
      const double wall = run_once(dataset, fleet, hosts, threads, ticks);
      if (threads == thread_counts.front()) serial_wall = wall;
      table.add_row({std::to_string(hosts), std::to_string(threads),
                     util::TablePrinter::num(wall * 1e3, 1),
                     util::TablePrinter::num(
                         static_cast<double>(hosts * ticks) / wall, 0),
                     util::TablePrinter::num(serial_wall / wall, 2)});
    }
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  const std::vector<common::VmConfig> small_fleet = {common::paper_vm_type(1),
                                                     common::paper_vm_type(2)};
  // 4xVM1 + 2xVM2 + 2xVM3: the duplicated types land on the estimator's
  // symmetry-collapsed path whenever the duplicates report equal states.
  std::vector<common::VmConfig> mixed_fleet;
  for (int k = 0; k < 4; ++k) mixed_fleet.push_back(common::paper_vm_type(1));
  for (int k = 0; k < 2; ++k) mixed_fleet.push_back(common::paper_vm_type(2));
  for (int k = 0; k < 2; ++k) mixed_fleet.push_back(common::paper_vm_type(3));

  core::CollectionOptions collect;
  collect.duration_s = quick ? 20.0 : 60.0;
  const auto small_dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), small_fleet,
                                    collect);
  const auto mixed_dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), mixed_fleet,
                                    collect);

  const std::uint64_t ticks = quick ? 20 : 200;
  const std::vector<std::size_t> host_counts =
      quick ? std::vector<std::size_t>{2, 4} : std::vector<std::size_t>{2, 4, 8, 16};
  const std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};

  const std::string ticks_label = std::to_string(ticks);
  run_grid(("fleet engine scaling (" + ticks_label + " ticks, 2 VMs/host)")
               .c_str(),
           small_dataset, small_fleet, host_counts, thread_counts, ticks);
  run_grid(("fleet engine scaling (" + ticks_label +
            " ticks, 8 mixed VMs/host: 4xVM1+2xVM2+2xVM3)")
               .c_str(),
           mixed_dataset, mixed_fleet, host_counts, thread_counts, ticks);
  std::printf("determinism contract: the tenant ledgers of every cell in one "
              "hosts row are byte-identical (see test_fleet).\n");
  return 0;
}
