// Fleet engine scaling: throughput vs. thread count vs. fleet size.
//
// The Shapley value's Additivity axiom makes the per-host games independent,
// so fleet metering should scale with worker threads until the machine runs
// out of cores (the aggregation thread serializes only the cheap roll-up).
// This bench drives FleetEngine over a hosts x threads grid and reports
// host-ticks/s — one host-tick being one complete Fig. 8 online step (sim
// advance + meter read + Shapley estimate + ledger roll-up) for one host.
// Thread counts beyond the hardware's cores measure oversubscription, not
// speedup; the table prints the detected core count for context.
//
// The second grid packs 8 VMs of three types onto each host — the shape the
// symmetry-collapsed estimator kernel is built for (duplicated VM types keep
// the per-tick game at compositions, not 2^8 masks).
//
// Pass --quick for the CI smoke configuration: a trimmed grid and tick count
// that finishes in seconds while still exercising every code path.
//
// Pass --tracing-overhead to skip the grids and instead emit a JSON record
// comparing per-tick latency with the global tracer disarmed vs armed — the
// evidence behind the "<3% overhead" acceptance bar in EXPERIMENTS.md. Run it
// once against the default build and once against -DVMPOWER_TRACING=OFF (the
// record carries tracing_compiled so the two are distinguishable).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "fleet/engine.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "serve/transport.hpp"
#include "util/table.hpp"

using namespace vmp;

namespace {

double run_once(const core::OfflineDataset& dataset,
                const std::vector<common::VmConfig>& fleet, std::size_t hosts,
                std::size_t threads, std::uint64_t ticks) {
  fleet::FleetOptions options;
  options.hosts = hosts;
  options.threads = threads;
  options.fleet_per_host = fleet;
  options.seed = 11;
  const auto start = std::chrono::steady_clock::now();
  fleet::FleetEngine engine(options, dataset);
  engine.run(ticks);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void run_grid(const char* banner, const core::OfflineDataset& dataset,
              const std::vector<common::VmConfig>& fleet,
              std::span<const std::size_t> host_counts,
              std::span<const std::size_t> thread_counts,
              std::uint64_t ticks) {
  util::print_banner(banner);
  std::printf("hardware threads: %u\n", std::thread::hardware_concurrency());
  util::TablePrinter table(
      {"hosts", "threads", "wall (ms)", "host-ticks/s", "speedup vs 1T"});
  for (const std::size_t hosts : host_counts) {
    double serial_wall = 0.0;
    for (const std::size_t threads : thread_counts) {
      const double wall = run_once(dataset, fleet, hosts, threads, ticks);
      if (threads == thread_counts.front()) serial_wall = wall;
      table.add_row({std::to_string(hosts), std::to_string(threads),
                     util::TablePrinter::num(wall * 1e3, 1),
                     util::TablePrinter::num(
                         static_cast<double>(hosts * ticks) / wall, 0),
                     util::TablePrinter::num(serial_wall / wall, 2)});
    }
  }
  table.print();
}

// Wire-propagation cost on the serve path: every query carries a full trace
// context block (id + trace id + parent span + budget) through the same
// Dispatcher the TCP workers run, so the armed-vs-disarmed delta is the cost
// of adopting the remote context and recording the per-request spans, and
// the disarmed number proves propagation idles at one relaxed load per span
// site. Returns the minimum per-query wall in microseconds.
double run_propagated_queries(serve::InProcessTransport& transport,
                              const std::string& frame, std::uint64_t queries) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < queries; ++i)
    (void)transport.roundtrip_binary(frame);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
             .count() *
         1e6 / static_cast<double>(queries);
}

// Disarmed-vs-armed tracer latency on one fixed fleet configuration plus the
// serve-path propagation arms. Reps alternate between the arms so clock
// drift and cache warm-up hit both equally; the minimum wall per arm is the
// least-noisy estimate.
int run_tracing_overhead(bool quick) {
  const std::vector<common::VmConfig> fleet = {common::paper_vm_type(1),
                                               common::paper_vm_type(2)};
  core::CollectionOptions collect;
  collect.duration_s = quick ? 20.0 : 60.0;
  const auto dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), fleet, collect);

  const std::size_t hosts = 4;
  const std::size_t threads = 2;
  const std::uint64_t ticks = quick ? 40 : 200;
  const int reps = quick ? 3 : 5;

  obs::Tracer& tracer = obs::Tracer::global();
  double disarmed_wall = 1e300;
  double armed_wall = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    tracer.set_enabled(false);
    disarmed_wall =
        std::min(disarmed_wall, run_once(dataset, fleet, hosts, threads, ticks));
    tracer.set_enabled(true);
    tracer.clear();  // bound ring memory across reps.
    armed_wall =
        std::min(armed_wall, run_once(dataset, fleet, hosts, threads, ticks));
  }
  tracer.set_enabled(false);

  // Serve-path propagation: a tiny snapshot keeps the engine cost flat so the
  // delta isolates the trace-context decode + span recording per query.
  serve::SnapshotStore store(8);
  serve::Snapshot snapshot;
  snapshot.tick = 1;
  snapshot.time_s = 1.0;
  snapshot.vms = {{1, 1, 1, 10.0, 10.0}, {1, 2, 2, 20.0, 20.0}};
  snapshot.tenants = {{1, 10.0, 10.0}, {2, 20.0, 20.0}};
  snapshot.total_power_w = 30.0;
  snapshot.total_energy_j = 30.0;
  store.publish(snapshot);
  serve::QueryEngine engine(store, {});
  serve::InProcessTransport transport(engine, nullptr);
  serve::Request request;
  request.kind = serve::QueryKind::kFleetPower;
  serve::TraceContextWire wire;
  wire.trace_id = 42;
  wire.parent_span = 7;
  wire.budget_us = 250000;
  const std::string traced_frame = serve::encode_frame_with_trace(
      serve::encode_request(request), 1, wire);
  const std::uint64_t queries = quick ? 5000 : 50000;
  double prop_disarmed_us = 1e300;
  double prop_armed_us = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    tracer.set_enabled(false);
    prop_disarmed_us = std::min(
        prop_disarmed_us, run_propagated_queries(transport, traced_frame,
                                                 queries));
    tracer.set_enabled(true);
    tracer.clear();
    prop_armed_us = std::min(
        prop_armed_us, run_propagated_queries(transport, traced_frame,
                                              queries));
  }
  tracer.set_enabled(false);

  const double disarmed_us = disarmed_wall * 1e6 / static_cast<double>(ticks);
  const double armed_us = armed_wall * 1e6 / static_cast<double>(ticks);
  const double overhead_pct = (armed_us / disarmed_us - 1.0) * 100.0;
  const double prop_overhead_pct =
      (prop_armed_us / prop_disarmed_us - 1.0) * 100.0;
  std::printf(
      "{\"benchmark\":\"fleet_tracing_overhead\","
      "\"tracing_compiled\":%s,\"hosts\":%zu,\"threads\":%zu,"
      "\"vms_per_host\":%zu,\"ticks\":%llu,\"reps\":%d,"
      "\"disarmed_us_per_tick\":%.2f,\"armed_us_per_tick\":%.2f,"
      "\"armed_overhead_pct\":%.2f,"
      "\"propagation_queries\":%llu,"
      "\"propagation_disarmed_us_per_query\":%.3f,"
      "\"propagation_armed_us_per_query\":%.3f,"
      "\"propagation_armed_overhead_pct\":%.2f}\n",
      VMPOWER_TRACING_COMPILED ? "true" : "false", hosts, threads, fleet.size(),
      static_cast<unsigned long long>(ticks), reps, disarmed_us, armed_us,
      overhead_pct, static_cast<unsigned long long>(queries), prop_disarmed_us,
      prop_armed_us, prop_overhead_pct);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool tracing_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--tracing-overhead") == 0)
      tracing_overhead = true;
  }
  if (tracing_overhead) return run_tracing_overhead(quick);

  const std::vector<common::VmConfig> small_fleet = {common::paper_vm_type(1),
                                                     common::paper_vm_type(2)};
  // 4xVM1 + 2xVM2 + 2xVM3: the duplicated types land on the estimator's
  // symmetry-collapsed path whenever the duplicates report equal states.
  std::vector<common::VmConfig> mixed_fleet;
  for (int k = 0; k < 4; ++k) mixed_fleet.push_back(common::paper_vm_type(1));
  for (int k = 0; k < 2; ++k) mixed_fleet.push_back(common::paper_vm_type(2));
  for (int k = 0; k < 2; ++k) mixed_fleet.push_back(common::paper_vm_type(3));

  core::CollectionOptions collect;
  collect.duration_s = quick ? 20.0 : 60.0;
  const auto small_dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), small_fleet,
                                    collect);
  const auto mixed_dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), mixed_fleet,
                                    collect);

  const std::uint64_t ticks = quick ? 20 : 200;
  const std::vector<std::size_t> host_counts =
      quick ? std::vector<std::size_t>{2, 4} : std::vector<std::size_t>{2, 4, 8, 16};
  const std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};

  const std::string ticks_label = std::to_string(ticks);
  run_grid(("fleet engine scaling (" + ticks_label + " ticks, 2 VMs/host)")
               .c_str(),
           small_dataset, small_fleet, host_counts, thread_counts, ticks);
  run_grid(("fleet engine scaling (" + ticks_label +
            " ticks, 8 mixed VMs/host: 4xVM1+2xVM2+2xVM3)")
               .c_str(),
           mixed_dataset, mixed_fleet, host_counts, thread_counts, ticks);
  std::printf("determinism contract: the tenant ledgers of every cell in one "
              "hosts row are byte-identical (see test_fleet).\n");
  return 0;
}
