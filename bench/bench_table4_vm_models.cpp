// Reproduces Table IV: the four VM instance types of the evaluation and
// their per-type isolation power models p = w * u (Eq. 2), trained from
// marginal contributions on the otherwise-idle prototype.
//
// Paper coefficients: 13.15, 22.53, 50.26, 96.99. The simulated Xeon yields
// the same pattern: the coefficient grows sub-linearly in vCPUs because
// multi-vCPU VMs partially co-schedule their own sibling threads.
#include <cstdio>

#include "baselines/trainer.hpp"
#include "common/vm_config.hpp"
#include "sim/machine_spec.hpp"
#include "util/table.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();

  base::TrainingOptions options;
  options.duration_s = 600.0;
  const auto models = base::train_catalogue_models(spec, catalogue, options);

  const char* paper_models[] = {"p = 13.15u", "p = 22.53u", "p = 50.26u",
                                "p = 96.99u"};

  util::print_banner("Table IV: VM configuration and isolation power models");
  util::TablePrinter table({"VM Type", "vCPU", "Memory", "Disk",
                            "fitted model", "paper model", "W per vCPU"});
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    const auto& config = catalogue[i];
    char mem[16], disk[16];
    std::snprintf(mem, sizeof mem, "%uG", config.memory_mb / 1024);
    std::snprintf(disk, sizeof disk, "%uG", config.disk_gb);
    table.add_row(
        {config.type_name, std::to_string(config.vcpus), mem, disk,
         "p = " + util::TablePrinter::num(models[i].cpu_coefficient(), 2) + "u",
         paper_models[i],
         util::TablePrinter::num(
             models[i].cpu_coefficient() / config.vcpus, 2)});
  }
  table.print();

  std::printf("\nshape check: watts-per-vCPU falls from %.2f (VM1) to %.2f "
              "(VM4) — the\nsub-linear growth the paper measured, caused by "
              "intra-VM sibling packing.\n",
              models[0].cpu_coefficient() / catalogue[0].vcpus,
              models[3].cpu_coefficient() / catalogue[3].vcpus);
  return 0;
}
