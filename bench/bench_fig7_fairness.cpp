// Reproduces Fig. 7: fairness of Shapley value vs resource-usage-based
// allocation under VM competition.
//
// Scenario (a): VM2 and VM3 compete and lose 1 W; VM1 is uninvolved.
// Resource-usage allocation spreads the decline over all three VMs — VM1 is
// punished for a competition it did not join. Shapley charges the decline
// only to the competitors.
//
// Scenario (b): VM1 competes with VM2 (1 W decline) while VM2 and VM3 also
// compete (2 W decline). Resource-usage allocation docks VM1 more than the
// 1 W its own competition costs; Shapley splits each pairwise decline among
// its participants.
#include <cstdio>

#include "core/shapley.hpp"
#include "util/table.hpp"

using namespace vmp;

namespace {

// Stand-alone powers are 5 W each; `decline(i, j)` watts vanish when i and j
// are in the same coalition.
core::WorthFn competition_game(double decline01, double decline12) {
  return [=](core::Coalition s) {
    double power = 5.0 * static_cast<double>(s.size());
    if (s.contains(0) && s.contains(1)) power -= decline01;
    if (s.contains(1) && s.contains(2)) power -= decline12;
    return power;
  };
}

void run_scenario(const char* title, double decline01, double decline12,
                  const char* note) {
  const core::WorthFn v = competition_game(decline01, decline12);
  const double total = v(core::Coalition::grand(3));
  const auto shapley = core::shapley_values(3, v);

  // Resource-usage allocation: all three VMs run identical jobs (equal
  // resource usage), so the measured total is split equally.
  const double usage_share = total / 3.0;

  util::print_banner(title);
  util::TablePrinter table({"VM", "stand-alone (W)", "resource-usage (W)",
                            "Shapley (W)"});
  for (int i = 0; i < 3; ++i) {
    table.add_row({"VM" + std::to_string(i + 1), util::TablePrinter::num(5.0, 2),
                   util::TablePrinter::num(usage_share, 2),
                   util::TablePrinter::num(shapley[i], 2)});
  }
  table.print();
  std::printf("machine power: %.2f W (%.2f W of decline)\n", total,
              15.0 - total);
  std::printf("%s\n", note);
}

}  // namespace

int main() {
  run_scenario(
      "Fig. 7(a): VM2 and VM3 compete (1 W decline); VM1 uninvolved",
      /*decline01=*/0.0, /*decline12=*/1.0,
      "resource-usage docks VM1 by 0.33 W although it caused no decline;\n"
      "Shapley leaves VM1 at its stand-alone 5 W and splits the 1 W between\n"
      "VM2 and VM3 (paper: the fair outcome).");

  run_scenario(
      "Fig. 7(b): VM1-VM2 compete (1 W) and VM2-VM3 compete (2 W)",
      /*decline01=*/1.0, /*decline12=*/2.0,
      "resource-usage docks VM1 a full 1 W share of the total 3 W decline\n"
      "although its own competition only causes 1 W split two ways; Shapley\n"
      "charges VM1 exactly 0.5 W (half of its pairwise decline), VM3 1.0 W,\n"
      "and VM2 — party to both competitions — 1.5 W.");

  std::printf("\nconclusion (paper Sec. IV-B): Shapley value is fairer than "
              "resource\nusage-based allocation because it attributes each "
              "power decline to the VMs\nthat cause it, over all possible "
              "sub-coalitions.\n");
  return 0;
}
