// Ablations of the design choices behind the Shapley-VHC pipeline
// (DESIGN.md per-experiment index, §V ablation row):
//
//   A. offline measurement budget — how much synthetic collection time the
//      VHC fit needs before the Fig. 10 validation error flattens;
//   B. state-normalization resolution — the paper fixes 0.01; sweep it;
//   C. grand-coalition anchoring — the estimator option that makes
//      Efficiency exact vs trusting the approximation's own v(N, C');
//   D. Monte-Carlo permutation budget vs exact Shapley on oracle worths —
//      the escape hatch beyond the paper's n <= 16 regime;
//   E. per-combination weights (the paper's VHC model, 2^r campaigns) vs a
//      single shared weight set (linear-in-types cost; the Sec. VIII
//      "arbitrary VM types" extension);
//   F. Shapley vs normalized Banzhaf — why the paper's axiom set pins the
//      Shapley value specifically.
#include <cstdio>
#include <numeric>

#include "common/vm_config.hpp"
#include "core/banzhaf.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "core/monte_carlo.hpp"
#include "core/shared_weights.hpp"
#include "core/shapley.hpp"
#include "sim/coalition_probe.hpp"
#include "sim/physical_machine.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

namespace {

const auto kCatalogue = common::paper_vm_catalogue();
const std::vector<common::VmConfig> kFleet = {kCatalogue[0], kCatalogue[0],
                                              kCatalogue[1], kCatalogue[2]};

// Mean relative error of the grand-coalition v(S,C) prediction on a SPEC
// validation run, for a dataset collected with the given options.
util::Summary validation_error(const core::OfflineDataset& dataset,
                               double duration_s, std::uint64_t seed) {
  const sim::MachineSpec spec = sim::xeon_prototype();
  sim::PhysicalMachine machine(spec, seed);
  const auto benchmarks = wl::spec_subset();
  for (std::size_t i = 0; i < kFleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        kFleet[i],
        wl::make_spec_workload(benchmarks[i % benchmarks.size()], seed + i));
    machine.hypervisor().start_vm(id);
  }
  const auto trace = sim::run_scenario(machine, duration_s);
  const auto grand_combo =
      static_cast<core::VhcComboMask>((1u << dataset.universe.size()) - 1);
  std::vector<double> errors;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    std::vector<common::StateVector> agg(dataset.universe.size());
    for (const auto& obs : trace.states.records()[k].observations)
      agg[dataset.universe.index_of(obs.type_id)] += obs.state;
    const double predicted = dataset.approximation.predict(grand_combo, agg);
    const double measured =
        std::max(0.0, trace.measured_power[k] - spec.idle_power_w);
    errors.push_back(util::relative_error(predicted, measured));
  }
  return util::summarize(errors);
}

void ablation_budget() {
  util::print_banner(
      "Ablation A: offline collection budget per VHC combination");
  util::TablePrinter table({"seconds/combo", "table samples", "mean err",
                            "p90 err"});
  for (double budget : {30.0, 60.0, 120.0, 300.0, 600.0}) {
    core::CollectionOptions options;
    options.duration_s = budget;
    const auto dataset =
        core::collect_offline_dataset(sim::xeon_prototype(), kFleet, options);
    const auto summary = validation_error(dataset, 200.0, 4100);
    table.add_row({util::TablePrinter::num(budget, 0),
                   std::to_string(dataset.table.total_samples()),
                   util::TablePrinter::pct(summary.mean, 2),
                   util::TablePrinter::pct(summary.p90, 2)});
  }
  table.print();
  std::printf("expected: error flattens once each combo has a few hundred "
              "samples — the\npaper's 600 s per combo at 1 Hz is comfortably "
              "past the knee.\n");
}

void ablation_resolution() {
  util::print_banner("Ablation B: state-normalization resolution");
  util::TablePrinter table({"resolution", "mean err", "p90 err"});
  for (double resolution : {0.001, 0.01, 0.05, 0.1, 0.25}) {
    core::CollectionOptions options;
    options.duration_s = 300.0;
    options.resolution = resolution;
    const auto dataset =
        core::collect_offline_dataset(sim::xeon_prototype(), kFleet, options);
    const auto summary = validation_error(dataset, 200.0, 4200);
    table.add_row({util::TablePrinter::num(resolution, 3),
                   util::TablePrinter::pct(summary.mean, 2),
                   util::TablePrinter::pct(summary.p90, 2)});
  }
  table.print();
  std::printf("expected: the regression is robust to quantization well past "
              "the paper's\n0.01 — resolution mainly bounds table size, not "
              "accuracy.\n");
}

void ablation_anchor() {
  util::print_banner(
      "Ablation C: anchoring v(N,C') to the measurement (Efficiency)");
  const sim::MachineSpec spec = sim::xeon_prototype();
  core::CollectionOptions options;
  options.duration_s = 300.0;
  const auto dataset = core::collect_offline_dataset(spec, kFleet, options);
  core::ShapleyVhcEstimator anchored(dataset.universe, dataset.approximation,
                                     /*anchor=*/true);
  core::ShapleyVhcEstimator unanchored(dataset.universe, dataset.approximation,
                                       /*anchor=*/false);

  sim::PhysicalMachine machine(spec, 606);
  const auto benchmarks = wl::spec_subset();
  for (std::size_t i = 0; i < kFleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        kFleet[i], wl::make_spec_workload(benchmarks[i], 606 + i));
    machine.hypervisor().start_vm(id);
  }
  util::RunningStats anchored_gap, unanchored_gap;
  for (int t = 0; t < 200; ++t) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto a = anchored.estimate(samples, adjusted);
    const auto u = unanchored.estimate(samples, adjusted);
    anchored_gap.add(util::relative_error(
        std::accumulate(a.begin(), a.end(), 0.0), adjusted));
    unanchored_gap.add(util::relative_error(
        std::accumulate(u.begin(), u.end(), 0.0), adjusted));
  }
  util::TablePrinter table({"variant", "mean efficiency gap", "max gap"});
  table.add_row({"anchored (paper online mode)",
                 util::TablePrinter::pct(anchored_gap.mean(), 4),
                 util::TablePrinter::pct(anchored_gap.max(), 4)});
  table.add_row({"unanchored (pure approximation)",
                 util::TablePrinter::pct(unanchored_gap.mean(), 2),
                 util::TablePrinter::pct(unanchored_gap.max(), 2)});
  table.print();
  std::printf("expected: anchoring zeroes the efficiency gap; without it the "
              "gap equals the\nv(N,C') approximation error (a few percent).\n");
}

void ablation_monte_carlo() {
  util::print_banner(
      "Ablation D: Monte-Carlo permutation budget vs exact Shapley");
  // The 5-VM evaluation fleet at near-full load: the machine sits beyond the
  // turbo knee, so coalition worths carry higher-order (non-pairwise)
  // interactions and Monte-Carlo genuinely has to converge. (Below the knee
  // the power game is singleton + pairwise terms only, and the antithetic
  // permutation pairing is *exact*: a permutation and its reverse average
  // each pair term to exactly half — see the last column.)
  const sim::MachineSpec spec = sim::xeon_prototype();
  const std::vector<common::VmConfig> fleet = {kCatalogue[0], kCatalogue[0],
                                               kCatalogue[1], kCatalogue[2],
                                               kCatalogue[3]};
  const sim::CoalitionProbe probe(spec, fleet);
  const std::vector<common::StateVector> states(
      fleet.size(), common::StateVector::cpu_only(0.95));
  const core::WorthFn v = [&](core::Coalition s) {
    return probe.worth(s.mask(), states);
  };
  const auto exact = core::shapley_values(fleet.size(), v);

  util::TablePrinter table({"permutations", "worth evals", "max |err| (W)",
                            "max rel err", "antithetic max |err|"});
  for (std::size_t budget : {4u, 16u, 64u, 256u, 1024u}) {
    const auto plain = core::monte_carlo_shapley(
        fleet.size(), v,
        {.permutations = budget, .seed = 5, .antithetic = false});
    const auto paired = core::monte_carlo_shapley(
        fleet.size(), v, {.permutations = budget, .seed = 5});
    double max_abs = 0.0, max_rel = 0.0, max_abs_paired = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      max_abs = std::max(max_abs, std::abs(plain.values[i] - exact[i]));
      max_rel = std::max(max_rel,
                         util::relative_error(plain.values[i], exact[i]));
      max_abs_paired =
          std::max(max_abs_paired, std::abs(paired.values[i] - exact[i]));
    }
    table.add_row({std::to_string(budget),
                   std::to_string(plain.worth_evaluations),
                   util::TablePrinter::num(max_abs, 3),
                   util::TablePrinter::pct(max_rel, 2),
                   util::TablePrinter::num(max_abs_paired, 4)});
  }
  table.print();
  std::printf("expected: error shrinks ~1/sqrt(budget); memoization caps "
              "worth evaluations\nat 2^n, so dense sampling converges to the "
              "exact computation\'s cost.\nAntithetic pairing removes the "
              "pairwise-interaction variance entirely, which\ndominates for "
              "this power game.\n");
}

}  // namespace

void ablation_shared_weights() {
  util::print_banner(
      "Ablation E: per-combination weights vs shared weights (Sec. VIII)");
  core::CollectionOptions options;
  options.duration_s = 300.0;
  const auto dataset =
      core::collect_offline_dataset(sim::xeon_prototype(), kFleet, options);
  const auto shared = core::SharedWeightApprox::fit(dataset.table);

  // Validate both on the same SPEC run, predicting the grand coalition.
  const sim::MachineSpec spec = sim::xeon_prototype();
  sim::PhysicalMachine machine(spec, 4400);
  const auto benchmarks = wl::spec_subset();
  for (std::size_t i = 0; i < kFleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        kFleet[i], wl::make_spec_workload(benchmarks[i], 4400 + i));
    machine.hypervisor().start_vm(id);
  }
  const auto trace = sim::run_scenario(machine, 200.0);
  const auto grand_combo =
      static_cast<core::VhcComboMask>((1u << dataset.universe.size()) - 1);
  util::RunningStats per_combo_err, shared_err;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    std::vector<common::StateVector> agg(dataset.universe.size());
    for (const auto& obs : trace.states.records()[k].observations)
      agg[dataset.universe.index_of(obs.type_id)] += obs.state;
    const double measured =
        std::max(0.0, trace.measured_power[k] - spec.idle_power_w);
    per_combo_err.add(util::relative_error(
        dataset.approximation.predict(grand_combo, agg), measured));
    shared_err.add(util::relative_error(shared.predict(agg), measured));
  }
  util::TablePrinter table(
      {"approximation", "offline campaigns", "mean err", "max err"});
  table.add_row({"per-combination (paper)",
                 "2^r - 1 = " + std::to_string(dataset.universe.combo_count() - 1),
                 util::TablePrinter::pct(per_combo_err.mean(), 2),
                 util::TablePrinter::pct(per_combo_err.max(), 2)});
  table.add_row({"shared weights (extension)", "r (singletons suffice)",
                 util::TablePrinter::pct(shared_err.mean(), 2),
                 util::TablePrinter::pct(shared_err.max(), 2)});
  table.print();
  std::printf("expected: shared weights cost a few points of accuracy (cross-"
              "VHC couplings\ncan no longer be absorbed per combination) in "
              "exchange for measurement cost\nlinear in the number of types — "
              "the trade the paper's Sec. VIII anticipates.\n");
}

void ablation_banzhaf() {
  util::print_banner(
      "Ablation F: Shapley vs normalized Banzhaf allocation");
  // Beyond the turbo knee the game has higher-order interactions, so the two
  // rules genuinely differ. (For purely pairwise games — this machine below
  // the knee — they coincide, which is itself worth knowing.)
  const sim::MachineSpec spec = sim::xeon_prototype();
  const std::vector<common::VmConfig> fleet = {kCatalogue[0], kCatalogue[0],
                                               kCatalogue[1], kCatalogue[2],
                                               kCatalogue[3]};
  const sim::CoalitionProbe probe(spec, fleet);
  const std::vector<common::StateVector> states(
      fleet.size(), common::StateVector::cpu_only(0.95));
  const core::WorthFn v = [&](core::Coalition s) {
    return probe.worth(s.mask(), states);
  };
  const double grand = v(core::Coalition::grand(fleet.size()));
  const auto shapley = core::shapley_values(fleet.size(), v);
  const auto banzhaf = core::normalized_banzhaf_values(fleet.size(), v, grand);

  util::TablePrinter table({"VM", "type", "Shapley (W)",
                            "norm. Banzhaf (W)", "difference"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    table.add_row({"vm" + std::to_string(i), fleet[i].type_name,
                   util::TablePrinter::num(shapley[i], 3),
                   util::TablePrinter::num(banzhaf[i], 3),
                   util::TablePrinter::num(banzhaf[i] - shapley[i], 3)});
  }
  table.print();
  std::printf("both sum to v(N) = %.2f W here — but Banzhaf only because we "
              "rescaled it;\nraw Banzhaf sums to %.2f W. The rescaling step "
              "is ad hoc (it has no axiomatic\njustification), which is why "
              "the paper's Efficiency axiom singles out Shapley.\n",
              grand,
              std::accumulate(
                  core::banzhaf_values(fleet.size(), v).begin(),
                  core::banzhaf_values(fleet.size(), v).end(), 0.0));
}

int main() {
  ablation_budget();
  ablation_resolution();
  ablation_anchor();
  ablation_monte_carlo();
  ablation_shared_weights();
  ablation_banzhaf();
  return 0;
}
