// Reproduces Fig. 12: per-VM allocations of one sample instant from the
// Fig. 11 run, comparing (I) the measured aggregated power, (II) the
// Shapley-based shares, (III) resource-usage-based shares, and (IV) raw
// power-model shares.
//
// Paper observations to verify: III is a rescaled II's competitor — the
// resource-usage and power-model allocations share the same *proportions*
// (III = IV rescaled to the measurement), and only II and III sum to the
// measured power, while the Shapley split differs from both.
#include <cstdio>
#include <numeric>

#include "baselines/power_model.hpp"
#include "baselines/rapl_share.hpp"
#include "baselines/resource_usage.hpp"
#include "baselines/trainer.hpp"
#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "sim/physical_machine.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const auto catalogue = common::paper_vm_catalogue();
  const std::vector<common::VmConfig> fleet = {
      catalogue[0], catalogue[0], catalogue[1], catalogue[2], catalogue[3]};

  core::CollectionOptions options;
  options.duration_s = 400.0;
  const auto dataset = core::collect_offline_dataset(spec, fleet, options);
  core::ShapleyVhcEstimator shapley(dataset.universe, dataset.approximation);

  base::TrainingOptions train;
  train.duration_s = 400.0;
  const auto models = base::train_catalogue_models(spec, catalogue, train);
  base::PowerModelEstimator power_model(models);
  base::ResourceUsageEstimator resource_usage(models);
  base::RaplShareEstimator rapl_share(catalogue);  // extension comparator

  // Run the Fig. 11 workload and freeze one representative sample.
  sim::PhysicalMachine machine(spec, 11);
  const wl::SpecBenchmark jobs[] = {
      wl::SpecBenchmark::kSjeng, wl::SpecBenchmark::kNamd,
      wl::SpecBenchmark::kGobmk, wl::SpecBenchmark::kTonto,
      wl::SpecBenchmark::kWrf};
  std::vector<sim::VmId> ids;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i], wl::make_spec_workload(jobs[i], 7100 + i));
    machine.hypervisor().start_vm(id);
    ids.push_back(id);
  }
  double adjusted = 0.0;
  std::vector<core::VmSample> samples;
  for (int t = 0; t < 100; ++t) {  // settle into mid-run, then sample
    const auto frame = machine.step(1.0);
    adjusted = std::max(0.0, frame.active_power_w - machine.idle_power_w());
    samples.clear();
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
  }

  const auto phi_shapley = shapley.estimate(samples, adjusted);
  const auto phi_usage = resource_usage.estimate(samples, adjusted);
  const auto phi_model = power_model.estimate(samples, adjusted);
  const auto phi_rapl = rapl_share.estimate(samples, adjusted);

  util::print_banner(
      "Fig. 12: per-VM estimation of one sample (I measured, II Shapley, "
      "III resource-usage, IV power model)");
  std::printf("I: measured aggregated power (idle deducted): %.2f W\n\n",
              adjusted);
  util::TablePrinter table({"VM", "type", "job", "cpu util", "II Shapley (W)",
                            "III res-usage (W)", "IV power-model (W)",
                            "V rapl-prop (ext, W)"});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    table.add_row({"vm" + std::to_string(ids[i]), fleet[i].type_name,
                   std::string(to_string(jobs[i])),
                   util::TablePrinter::num(samples[i].state.cpu(), 2),
                   util::TablePrinter::num(phi_shapley[i], 2),
                   util::TablePrinter::num(phi_usage[i], 2),
                   util::TablePrinter::num(phi_model[i], 2),
                   util::TablePrinter::num(phi_rapl[i], 2)});
  }
  const auto sum = [](const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0);
  };
  table.add_row({"sum", "", "", "", util::TablePrinter::num(sum(phi_shapley), 2),
                 util::TablePrinter::num(sum(phi_usage), 2),
                 util::TablePrinter::num(sum(phi_model), 2),
                 util::TablePrinter::num(sum(phi_rapl), 2)});
  table.print();

  std::printf("\nchecks (paper Sec. VII-C):\n");
  std::printf(" * III and IV share the same proportions (III is IV rescaled "
              "to I): vm0/vm4\n   ratio III = %.4f vs IV = %.4f\n",
              phi_usage[0] / phi_usage[4], phi_model[0] / phi_model[4]);
  std::printf(" * II and III sum to the measurement; IV oversubscribes by "
              "%.1f%%\n",
              100.0 * (sum(phi_model) - adjusted) / adjusted);
  std::printf(" * II (Shapley) allocates differently from III/IV — it credits "
              "contention\n   declines to the VMs that cause them.\n");
  return 0;
}
