// Federated scatter-gather benchmarks: fan-out latency as a function of
// shard count, the hedged-request win under an injected slow shard, and the
// graceful-degradation path with a killed shard.
//
// Section 1 — fan-out latency vs shard count, pooled vs unpooled: N
// in-process fleet shards (store + engine + server on loopback) answer the
// same window query through one FederationFrontend, once over the legacy
// connection-per-attempt thread-per-query fan-out (pooled=false) and once
// over the ConnectionPool + persistent dispatch pool. Every row of both
// arms cross-checks the acceptance criterion: the federated response must
// be *byte-identical* to a single fleet that metered every shard's VMs
// itself. The synthetic energies are integer joule counts that are whole
// multiples of 3.6e6 (exact kWh) and the TOU rate is 0.125 $/kWh — a power
// of two — so the Additivity roll-up is exact in IEEE doubles and the
// comparison is equality, not tolerance. Acceptance additionally requires
// the pooled p50 to beat the unpooled p50 at the widest fan-out.
//
// Section 2 — hedging: a three-shard federation where one shard's primary
// server stalls every request (ServerOptions::worker_delay) while its
// replica answers immediately. Unhedged, every fan-out waits out the stall;
// hedged, the replica wins the race after hedge_delay. The win is the p50
// gap, and vmpower_fed_hedge_wins_total proves the hedged path ran.
//
// Section 3 — partial degradation: one shard is stopped mid-run; the
// federated answer must stay ok with complete=false and the dead fleet
// named in missing_shards, and the values must equal the survivors' sum.
//
// --quick trims iteration counts for the CI smoke job; --json PATH writes a
// BENCH_federation.json blob.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "federate/frontend.hpp"
#include "federate/shard_map.hpp"
#include "federate/spin.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace vmp;

namespace {

using Clock = std::chrono::steady_clock;

constexpr double kJPerKwh = 3.6e6;
constexpr int kEpochs = 8;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string format_double(double value, const char* format) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, format, value);
  return buffer;
}

/// Shard `fleet`'s synthetic state at integer time t: disjoint hosts (host
/// id == fleet id), two VMs on two tenants, energies exact in doubles.
serve::Snapshot shard_at(std::uint32_t fleet, double t) {
  const double f = static_cast<double>(fleet);
  serve::Snapshot snapshot;
  snapshot.tick = static_cast<std::uint64_t>(t);
  snapshot.time_s = t;
  snapshot.vms = {{fleet, 1, 1, f, f * t * kJPerKwh},
                  {fleet, 2, 2, 2.0 * f, 2.0 * f * t * kJPerKwh}};
  snapshot.tenants = {{1, f, f * t * kJPerKwh},
                      {2, 2.0 * f, 2.0 * f * t * kJPerKwh}};
  snapshot.total_power_w = 3.0 * f;
  snapshot.total_energy_j = 3.0 * f * t * kJPerKwh;
  return snapshot;
}

serve::QueryEngineOptions exact_tou_options() {
  serve::QueryEngineOptions options;
  options.tou.offpeak_usd_per_kwh = 0.125;  // power of two: exact costs.
  options.tou.peak_usd_per_kwh = 0.125;
  return options;
}

serve::Request window_query() {
  serve::Request request;
  request.kind = serve::QueryKind::kTenantEnergy;
  request.tenant = 1;
  request.t0 = 1.0;
  request.t1 = static_cast<double>(kEpochs);
  return request;
}

std::vector<std::unique_ptr<federate::InProcessShard>> spin_shards(
    std::size_t count, std::chrono::milliseconds primary_delay =
                           std::chrono::milliseconds(0),
    bool replicas = false) {
  std::vector<std::unique_ptr<federate::InProcessShard>> shards;
  for (std::uint32_t fleet = 1; fleet <= count; ++fleet) {
    federate::InProcessShardOptions options;
    options.fleet = fleet;
    options.engine = exact_tou_options();
    options.server.port = 0;
    // The injected slow shard: only its *primary* stalls.
    if (fleet == 2) options.server.worker_delay = primary_delay;
    if (replicas) options.replica = serve::ServerOptions{};
    auto shard = std::make_unique<federate::InProcessShard>(options);
    for (int t = 1; t <= kEpochs; ++t)
      shard->store().publish(shard_at(fleet, t));
    shards.push_back(std::move(shard));
  }
  return shards;
}

federate::ShardMap map_of(
    const std::vector<std::unique_ptr<federate::InProcessShard>>& shards) {
  std::vector<federate::FleetShard> mapped;
  for (const auto& shard : shards) {
    federate::FleetShard entry;
    entry.fleet = shard->fleet();
    entry.endpoints.push_back(shard->port());
    if (shard->has_replica()) entry.endpoints.push_back(shard->replica_port());
    mapped.push_back(std::move(entry));
  }
  return federate::ShardMap(std::move(mapped));
}

struct FanoutLatency {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::string encoded;  ///< encoded response of the last execution.
};

FanoutLatency time_fanout(federate::FederationFrontend& frontend,
                          const serve::Request& request, std::size_t iters) {
  FanoutLatency latency;
  std::vector<double> times_ms;
  times_ms.reserve(iters);
  serve::Response response;
  for (std::size_t i = 0; i < iters; ++i) {
    const auto start = Clock::now();
    response = frontend.execute(request);
    times_ms.push_back(ms_since(start));
  }
  latency.p50_ms = util::percentile(times_ms, 50.0);
  latency.p99_ms = util::percentile(times_ms, 99.0);
  latency.encoded = serve::encode_response(response);
  return latency;
}

/// The single fleet that metered all `count` shards' VMs itself.
std::string merged_reference(std::size_t count, const serve::Request& request) {
  serve::SnapshotStore store(kEpochs + 1);
  for (int t = 1; t <= kEpochs; ++t) {
    serve::Snapshot merged;
    merged.tick = static_cast<std::uint64_t>(t);
    merged.time_s = t;
    double tenant1_w = 0.0, tenant1_j = 0.0, tenant2_w = 0.0, tenant2_j = 0.0;
    for (std::uint32_t fleet = 1; fleet <= count; ++fleet) {
      const serve::Snapshot shard = shard_at(fleet, t);
      merged.vms.insert(merged.vms.end(), shard.vms.begin(), shard.vms.end());
      tenant1_w += shard.tenants[0].power_w;
      tenant1_j += shard.tenants[0].energy_j;
      tenant2_w += shard.tenants[1].power_w;
      tenant2_j += shard.tenants[1].energy_j;
      merged.total_power_w += shard.total_power_w;
      merged.total_energy_j += shard.total_energy_j;
    }
    merged.tenants = {{1, tenant1_w, tenant1_j}, {2, tenant2_w, tenant2_j}};
    store.publish(merged);
  }
  serve::QueryEngine engine(store, exact_tou_options());
  return serve::encode_response(engine.execute(request));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const std::size_t iters = quick ? 60 : 400;
  const std::vector<std::size_t> shard_counts =
      quick ? std::vector<std::size_t>{1, 2, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const serve::Request request = window_query();
  bool pass = true;

  // --- Section 1: fan-out latency vs shard count, pooled vs unpooled ------
  util::print_banner("federated fan-out latency: pooled vs unpooled");
  util::TablePrinter fanout_table({"shards", "unpooled p50", "pooled p50",
                                   "speedup", "pooled p99",
                                   "byte-identical"});
  struct FanoutRow {
    std::size_t shards = 0;
    double unpooled_p50_ms = 0.0;
    double unpooled_p99_ms = 0.0;
    double pooled_p50_ms = 0.0;
    double pooled_p99_ms = 0.0;
    bool identical = false;
  };
  std::vector<FanoutRow> fanout_rows;
  for (const std::size_t count : shard_counts) {
    auto shards = spin_shards(count);
    const std::string reference = merged_reference(count, request);
    federate::FrontendOptions options;
    options.retries = 0;
    options.pooled = false;
    federate::FederationFrontend unpooled(map_of(shards), options);
    const FanoutLatency legacy = time_fanout(unpooled, request, iters);
    options.pooled = true;
    federate::FederationFrontend pooled_frontend(map_of(shards), options);
    const FanoutLatency pooled = time_fanout(pooled_frontend, request, iters);
    const bool identical =
        legacy.encoded == reference && pooled.encoded == reference;
    pass = pass && identical;
    fanout_rows.push_back({count, legacy.p50_ms, legacy.p99_ms, pooled.p50_ms,
                           pooled.p99_ms, identical});
    fanout_table.add_row(
        {std::to_string(count), format_double(legacy.p50_ms, "%.3f"),
         format_double(pooled.p50_ms, "%.3f"),
         format_double(legacy.p50_ms / pooled.p50_ms, "%.2fx"),
         format_double(pooled.p99_ms, "%.3f"), identical ? "yes" : "NO"});
    for (auto& shard : shards) shard->stop();
  }
  fanout_table.print();
  // The perf claim under test: reused connections + a persistent dispatch
  // pool must beat dial-and-spawn per query at the widest fan-out.
  const FanoutRow& widest = fanout_rows.back();
  const bool pooled_faster = widest.pooled_p50_ms < widest.unpooled_p50_ms;
  pass = pass && pooled_faster;
  std::printf(
      "every row of both arms compared byte-for-byte against a single\n"
      "merged fleet (Additivity: the roll-up is exact, not close).\n"
      "pooled p50 beats unpooled at %zu shards: %s (%.3f vs %.3f ms)\n",
      widest.shards, pooled_faster ? "yes" : "NO", widest.pooled_p50_ms,
      widest.unpooled_p50_ms);

  // --- Section 2: hedged requests vs an injected slow shard ---------------
  util::print_banner("hedging win under a slow shard");
  const std::chrono::milliseconds stall(quick ? 20 : 40);
  const std::size_t hedge_iters = quick ? 20 : 50;
  double unhedged_p50 = 0.0, hedged_p50 = 0.0;
  std::uint64_t hedge_wins = 0;
  {
    auto shards = spin_shards(3, stall, /*replicas=*/true);
    federate::FrontendOptions options;
    options.retries = 0;
    options.deadline = std::chrono::milliseconds(2000);
    federate::FederationFrontend unhedged(map_of(shards), options);
    unhedged_p50 = time_fanout(unhedged, request, hedge_iters).p50_ms;

    fleet::Metrics metrics;
    options.hedge = true;
    options.hedge_delay = std::chrono::milliseconds(2);
    options.metrics = &metrics;
    federate::FederationFrontend hedged(map_of(shards), options);
    hedged_p50 = time_fanout(hedged, request, hedge_iters).p50_ms;
    hedge_wins = metrics.counter("vmpower_fed_hedge_wins_total", "").value();
    for (auto& shard : shards) shard->stop();
  }
  const bool hedging_wins =
      hedge_wins > 0 &&
      hedged_p50 < static_cast<double>(stall.count());
  pass = pass && hedging_wins;
  util::TablePrinter hedge_table({"mode", "p50 (ms)"});
  hedge_table.add_row({"unhedged", format_double(unhedged_p50, "%.3f")});
  hedge_table.add_row({"hedged", format_double(hedged_p50, "%.3f")});
  hedge_table.print();
  std::printf(
      "slow primary stalls %lld ms per request; hedged p50 beats the stall:"
      " %s (replica wins: %llu)\n",
      static_cast<long long>(stall.count()), hedging_wins ? "yes" : "NO",
      static_cast<unsigned long long>(hedge_wins));

  // --- Section 3: graceful degradation with a killed shard ----------------
  util::print_banner("partial roll-up after a shard death");
  bool partial_ok = false;
  std::string missing_list;
  {
    auto shards = spin_shards(3);
    federate::FrontendOptions options;
    options.retries = 0;
    options.deadline = std::chrono::milliseconds(300);
    federate::FederationFrontend frontend(map_of(shards), options);
    shards[1]->stop();  // fleet 2 dies mid-run.
    const serve::Response degraded = frontend.execute(request);
    // Survivors: fleets 1 and 3 contribute (1+3) kWh/s over the window.
    const double expected = 4.0 * (request.t1 - request.t0) * kJPerKwh;
    partial_ok = degraded.ok && !degraded.complete &&
                 degraded.missing_shards.size() == 1 &&
                 degraded.missing_shards[0] == 2 &&
                 degraded.values.size() == 1 &&
                 degraded.values[0] == expected;
    for (const std::uint32_t fleet : degraded.missing_shards) {
      if (!missing_list.empty()) missing_list += ",";
      missing_list += std::to_string(fleet);
    }
    std::printf(
        "killed fleet 2 -> ok=%d complete=%d missing=[%s] survivors' sum "
        "exact=%d\n",
        degraded.ok ? 1 : 0, degraded.complete ? 1 : 0, missing_list.c_str(),
        degraded.values.size() == 1 && degraded.values[0] == expected ? 1
                                                                      : 0);
    for (auto& shard : shards) shard->stop();
  }
  pass = pass && partial_ok;

  std::printf("ACCEPTANCE: %s\n", pass ? "pass" : "FAIL");

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    char date[16] = "unknown";
    const std::time_t now_t = std::time(nullptr);
    if (std::tm* tm = std::localtime(&now_t))
      std::strftime(date, sizeof date, "%Y-%m-%d", tm);
    std::fprintf(out,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"date\": \"%s\",\n"
                 "    \"benchmark\": \"bench_federation\",\n"
                 "    \"build_type\": \"Release\",\n"
                 "    \"config\": {\n"
                 "      \"epochs_per_shard\": %d,\n"
                 "      \"query\": \"%s\",\n"
                 "      \"iterations\": %zu,\n"
                 "      \"slow_primary_stall_ms\": %lld,\n"
                 "      \"hedge_delay_ms\": 2\n"
                 "    }\n"
                 "  },\n"
                 "  \"fanout\": [\n",
                 date, kEpochs, request.canonical().c_str(), iters,
                 static_cast<long long>(stall.count()));
    for (std::size_t i = 0; i < fanout_rows.size(); ++i)
      std::fprintf(out,
                   "    {\"shards\": %zu, \"unpooled_p50_ms\": %.3f, "
                   "\"unpooled_p99_ms\": %.3f, \"pooled_p50_ms\": %.3f, "
                   "\"pooled_p99_ms\": %.3f, \"speedup_p50\": %.2f, "
                   "\"byte_identical\": %s}%s\n",
                   fanout_rows[i].shards, fanout_rows[i].unpooled_p50_ms,
                   fanout_rows[i].unpooled_p99_ms, fanout_rows[i].pooled_p50_ms,
                   fanout_rows[i].pooled_p99_ms,
                   fanout_rows[i].unpooled_p50_ms / fanout_rows[i].pooled_p50_ms,
                   fanout_rows[i].identical ? "true" : "false",
                   i + 1 < fanout_rows.size() ? "," : "");
    std::fprintf(
        out,
        "  ],\n"
        "  \"hedging\": {\n"
        "    \"unhedged_p50_ms\": %.3f,\n"
        "    \"hedged_p50_ms\": %.3f,\n"
        "    \"hedge_wins\": %llu\n"
        "  },\n"
        "  \"partial\": {\n"
        "    \"killed_fleet\": 2,\n"
        "    \"missing_shards\": \"%s\",\n"
        "    \"flagged_and_exact\": %s\n"
        "  },\n"
        "  \"acceptance\": {\n"
        "    \"criterion\": \"federated responses byte-identical to a merged "
        "single fleet at every shard count in both pooled and unpooled arms; "
        "pooled p50 beats unpooled at the widest fan-out; hedged p50 beats "
        "the injected stall; a killed shard degrades to a flagged partial "
        "naming the missing fleet\",\n"
        "    \"pass\": %s\n"
        "  }\n"
        "}\n",
        unhedged_p50, hedged_p50, static_cast<unsigned long long>(hedge_wins),
        missing_list.c_str(), partial_ok ? "true" : "false",
        pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return pass ? 0 : 1;
}
