// Reproduces Table III (and Fig. 6): comparison of allocation mechanisms for
// the two identical fully-loaded VMs of Fig. 4(b).
//
// Paper: marginal contribution gives 13 W / 7 W (efficient, unfair); the
// power model gives 13 W / 13 W (fair, inefficient); the ideal — and the
// Shapley value — gives 10 W / 10 W (both).
#include <cstdio>
#include <numeric>

#include "baselines/marginal.hpp"
#include "baselines/power_model.hpp"
#include "common/vm_config.hpp"
#include "core/axioms.hpp"
#include "core/shapley.hpp"
#include "sim/coalition_probe.hpp"
#include "util/table.hpp"

using namespace vmp;

int main() {
  // The measured game of Fig. 4(b)/Fig. 6 on the packed Xeon.
  sim::MachineSpec spec = sim::xeon_prototype();
  spec.pack_affinity = 1.0;  // siblings co-scheduled, as measured in Fig. 4
  const std::vector<common::VmConfig> fleet = {common::demo_c_vm(),
                                               common::demo_c_vm()};
  const sim::CoalitionProbe probe(spec, fleet);
  const std::vector<common::StateVector> states(
      2, common::StateVector::cpu_only(1.0));
  const double measured = probe.worth(0b11, states);

  util::print_banner("Fig. 6: marginal power contributions of the two VMs");
  std::printf("v({C_VM})        = %6.2f W\n", probe.worth(0b01, states));
  std::printf("v({C_VM'})       = %6.2f W\n", probe.worth(0b10, states));
  std::printf("v({C_VM,C_VM'})  = %6.2f W\n", measured);
  std::printf("marginal of the late joiner: %6.2f W\n",
              measured - probe.worth(0b01, states));

  // The three allocation mechanisms.
  base::MarginalContributionEstimator marginal(probe);
  std::vector<base::VmPowerModel> models(1);
  models[0].type = fleet[0].type_id;
  models[0].type_name = fleet[0].type_name;
  models[0].weights = {probe.worth(0b01, states), 0.0, 0.0, 0.0};
  base::PowerModelEstimator power_model(models);

  const std::vector<core::VmSample> samples = {
      {0, fleet[0].type_id, states[0]}, {1, fleet[1].type_id, states[1]}};
  const auto phi_marginal = marginal.estimate(samples, measured);
  const auto phi_model = power_model.estimate(samples, measured);
  const auto phi_shapley = core::nondet_shapley_values(
      states, [&](core::Coalition s, std::span<const common::StateVector> c) {
        return probe.worth(s.mask(), c);
      });

  const core::WorthFn game = [&](core::Coalition s) {
    return probe.worth(s.mask(), states);
  };
  const auto verdicts = [&](std::span<const double> phi) {
    const auto report = core::evaluate_axioms(2, game, phi, 0.05);
    return std::pair<std::string, std::string>(
        report.efficiency ? "yes" : "NO", report.symmetry ? "yes" : "NO");
  };

  util::print_banner(
      "Table III: power allocation mechanisms for two identical VMs");
  util::TablePrinter table({"Allocation Mechanism", "C_VM", "C_VM'", "sum",
                            "measured", "macro-accuracy", "fairness"});
  const struct {
    const char* name;
    std::span<const double> phi;
  } rows[] = {
      {"Marginal Contribution", phi_marginal},
      {"Power Model", phi_model},
      {"Shapley Value (ours)", phi_shapley},
  };
  for (const auto& row : rows) {
    const double sum = std::accumulate(row.phi.begin(), row.phi.end(), 0.0);
    const auto [eff, fair] = verdicts(row.phi);
    table.add_row({row.name, util::TablePrinter::num(row.phi[0], 2) + " W",
                   util::TablePrinter::num(row.phi[1], 2) + " W",
                   util::TablePrinter::num(sum, 2) + " W",
                   util::TablePrinter::num(measured, 2) + " W", eff, fair});
  }
  table.print();
  std::printf("\npaper: marginal 13/7 (accurate, unfair); power model 13/13 "
              "(fair, inaccurate);\nideal 10/10. Shapley value achieves the "
              "ideal allocation.\n");
  return 0;
}
