// Query service throughput: QPS vs. concurrent query threads, cached vs.
// uncached, over the in-process transport.
//
// The in-process transport applies the server's framing and runs the same
// Dispatcher the TCP workers do, so these numbers measure the whole request
// path (frame checks -> decode -> QueryEngine -> encode) minus only the
// kernel socket hops — the serving cost the service itself controls. Two
// engines answer an identical mixed workload (point + window + TOU cost
// queries) against the same snapshot store: one with the epoch-keyed LRU
// result cache, one with the cache disabled. Window and cost queries
// dominate the uncached cost (segment walks and retention-ring searches per
// request), which is exactly what the cache elides: the acceptance bar is a
// >= 5x speedup on the repeated-window workload.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/pricing.hpp"
#include "fleet/metrics.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "serve/transport.hpp"
#include "util/table.hpp"

using namespace vmp;

namespace {

constexpr std::size_t kSnapshots = 512;
constexpr std::size_t kVmsPerHost = 8;
constexpr std::size_t kHosts = 16;
constexpr int kRequestsPerThread = 20000;

/// Synthetic fleet trajectory: enough VMs that snapshot searches are not
/// trivially cache-resident, linear energies so any miscount would be
/// visible in spot checks.
serve::Snapshot snapshot_at(double t) {
  serve::Snapshot snapshot;
  snapshot.tick = static_cast<std::uint64_t>(t);
  snapshot.time_s = t;
  snapshot.vms.reserve(kHosts * kVmsPerHost);
  for (std::uint32_t host = 0; host < kHosts; ++host)
    for (std::uint32_t vm = 1; vm <= kVmsPerHost; ++vm) {
      serve::VmRecord record;
      record.host = host;
      record.vm = vm;
      record.tenant = 1 + (host + vm) % 4;
      record.power_w = 10.0 + vm;
      record.energy_j = (10.0 + vm) * t;
      snapshot.vms.push_back(record);
      snapshot.total_power_w += record.power_w;
    }
  for (core::TenantId tenant = 1; tenant <= 4; ++tenant) {
    serve::TenantRecord record;
    record.tenant = tenant;
    record.power_w = 100.0;
    record.energy_j = 100.0 * t;
    snapshot.tenants.push_back(record);
  }
  snapshot.total_energy_j = snapshot.total_power_w * t;
  return snapshot;
}

/// Point workload: dashboards polling instant power.
std::vector<std::string> point_workload() {
  return {"fleet-power", "stats", "vm-power 3 5", "tenant-power 2"};
}

/// Window/cost workload: billing pollers re-issuing the same aggregation
/// queries. Uncached, every tenant-cost walks the TOU segments of its
/// window, one retention-ring search per rate boundary — the work the
/// epoch-keyed cache elides on the re-issue.
std::vector<std::string> window_workload() {
  return {
      "vm-energy 3 5 64 448",    "tenant-energy 1 64 448",
      "tenant-energy 3 128 384", "tenant-cost 1 64 448",
      "tenant-cost 2 0 512",     "tenant-cost 3 32 480",
      "tenant-cost 4 100 400",
  };
}

struct RunResult {
  double wall_s = 0.0;
  double qps = 0.0;
};

RunResult drive(serve::QueryEngine& engine, std::size_t threads,
                const std::vector<std::string>& lines) {
  std::vector<std::string> frames;
  frames.reserve(lines.size());
  for (const std::string& line : lines) {
    const auto request = serve::parse_request_text(line);
    frames.push_back(
        serve::encode_frame(serve::encode_request(*request)));
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t thread = 0; thread < threads; ++thread)
    pool.emplace_back([&engine, &frames] {
      serve::InProcessTransport transport(engine);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string& frame = frames[i % frames.size()];
        const std::string response = transport.roundtrip_binary(frame);
        if (response.size() <= serve::kFramePrefixBytes)
          std::fprintf(stderr, "short response\n");
      }
    });
  for (std::thread& worker : pool) worker.join();

  RunResult result;
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  result.qps =
      static_cast<double>(threads * kRequestsPerThread) / result.wall_s;
  return result;
}

std::string format_double(double value, const char* format) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, format, value);
  return buffer;
}

}  // namespace

int main() {
  serve::SnapshotStore store(kSnapshots);
  for (std::size_t t = 1; t <= kSnapshots; ++t)
    store.publish(snapshot_at(static_cast<double>(t)));

  core::TouRateSchedule tou;
  tou.offpeak_usd_per_kwh = 0.10;
  tou.peak_usd_per_kwh = 0.25;
  // A compressed 12 s day puts ~85 rate boundaries inside the ring, the
  // granularity a year-long accounting horizon would have at full scale.
  tou.seconds_per_hour = 0.5;

  util::print_banner("query service throughput (in-process transport)");
  std::printf("hardware threads: %u | %zu snapshots x %zu VMs | %d req/thread\n",
              std::thread::hardware_concurrency(), kSnapshots,
              kHosts * kVmsPerHost, kRequestsPerThread);

  const struct {
    const char* name;
    std::vector<std::string> lines;
  } workloads[] = {{"point", point_workload()},
                   {"window+cost", window_workload()}};

  util::TablePrinter table({"workload", "threads", "cache", "wall (ms)", "QPS",
                            "hit rate", "speedup"});
  for (const auto& workload : workloads)
    for (const std::size_t threads : {1u, 2u, 4u}) {
      serve::QueryEngineOptions uncached_options;
      uncached_options.cache_capacity = 0;
      uncached_options.tou = tou;
      serve::QueryEngine uncached(store, uncached_options);
      const RunResult cold = drive(uncached, threads, workload.lines);

      serve::QueryEngineOptions cached_options;
      cached_options.tou = tou;
      serve::QueryEngine cached(store, cached_options);
      const RunResult warm = drive(cached, threads, workload.lines);
      const double total = static_cast<double>(cached.cache_hits() +
                                               cached.cache_misses());
      const double hit_rate =
          total > 0.0 ? static_cast<double>(cached.cache_hits()) / total : 0.0;

      table.add_row({workload.name, std::to_string(threads), "off",
                     format_double(cold.wall_s * 1e3, "%.1f"),
                     format_double(cold.qps, "%.0f"), "-", "1.0x"});
      table.add_row({workload.name, std::to_string(threads), "on",
                     format_double(warm.wall_s * 1e3, "%.1f"),
                     format_double(warm.qps, "%.0f"),
                     format_double(100.0 * hit_rate, "%.1f%%"),
                     format_double(warm.qps / cold.qps, "%.1fx")});
    }
  table.print();
  std::printf(
      "\ncached vs uncached compare identical workloads. The acceptance bar\n"
      "is >= 5x on the repeated window+cost mix: uncached, every tenant-cost\n"
      "re-walks its TOU segments with one retention-ring search per rate\n"
      "boundary; cached, the epoch-keyed LRU replays the pinned epoch pair.\n");
  return 0;
}
