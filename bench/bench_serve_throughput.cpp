// Query service benchmarks: in-process transport throughput (cache on/off)
// and pipelined TCP completion-order latency (ordered vs out-of-order vs
// out-of-order + coalescing).
//
// Section 1 — throughput: the in-process transport applies the server's
// framing and runs the same Dispatcher the TCP workers do, so these numbers
// measure the whole request path (frame checks -> decode -> QueryEngine ->
// encode) minus only the kernel socket hops. Two engines answer an identical
// mixed workload against the same snapshot store: one with the sharded LRU
// result cache, one with the cache disabled. The acceptance bar is a >= 5x
// speedup on the repeated window+cost mix.
//
// Section 2 — pipelined latency: one client pipelines an id-stamped mixed
// workload (expensive unique tenant-cost windows, duplicated in adjacent
// bursts, interleaved with cheap point queries) over real TCP and measures
// per-class send->receive latency. Three server modes answer the identical
// byte stream:
//   ordered     out_of_order=false, coalesce=false — every response held to
//               arrival order (head-of-line blocking on the slow windows);
//   ooo         out-of-order completion, no coalescing;
//   ooo+coal    out-of-order plus in-flight coalescing of the duplicates;
//   ooo nodelay=off   ooo with TCP_NODELAY disabled on both ends — the
//               before/after for the Nagle change (loopback typically shows
//               a small cheap-class delta; no hard assertion).
// Acceptance: cheap-query p99 under ooo is >= 2x lower than ordered, every
// response is byte-identical across modes per request id, and coalescing
// reduces duplicate evaluations (cache_misses counter).
//
// --quick trims sizes for the CI smoke job; --pipelined runs section 2 only;
// --json PATH writes the pipelined results as a BENCH_serve.json blob.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/pricing.hpp"
#include "fleet/metrics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "serve/transport.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace vmp;

namespace {

constexpr std::size_t kSnapshots = 512;
constexpr std::size_t kVmsPerHost = 8;
constexpr std::size_t kHosts = 16;

/// Synthetic fleet trajectory: enough VMs that snapshot searches are not
/// trivially cache-resident, linear energies so any miscount would be
/// visible in spot checks.
serve::Snapshot snapshot_at(double t) {
  serve::Snapshot snapshot;
  snapshot.tick = static_cast<std::uint64_t>(t);
  snapshot.time_s = t;
  snapshot.vms.reserve(kHosts * kVmsPerHost);
  for (std::uint32_t host = 0; host < kHosts; ++host)
    for (std::uint32_t vm = 1; vm <= kVmsPerHost; ++vm) {
      serve::VmRecord record;
      record.host = host;
      record.vm = vm;
      record.tenant = 1 + (host + vm) % 4;
      record.power_w = 10.0 + vm;
      record.energy_j = (10.0 + vm) * t;
      snapshot.vms.push_back(record);
      snapshot.total_power_w += record.power_w;
    }
  for (core::TenantId tenant = 1; tenant <= 4; ++tenant) {
    serve::TenantRecord record;
    record.tenant = tenant;
    record.power_w = 100.0;
    record.energy_j = 100.0 * t;
    snapshot.tenants.push_back(record);
  }
  snapshot.total_energy_j = snapshot.total_power_w * t;
  return snapshot;
}

/// Point workload: dashboards polling instant power.
std::vector<std::string> point_workload() {
  return {"fleet-power", "stats", "vm-power 3 5", "tenant-power 2"};
}

/// Window/cost workload: billing pollers re-issuing the same aggregation
/// queries. Uncached, every tenant-cost walks the TOU segments of its
/// window, one retention-ring search per rate boundary — the work the
/// epoch-keyed cache elides on the re-issue.
std::vector<std::string> window_workload() {
  return {
      "vm-energy 3 5 64 448",    "tenant-energy 1 64 448",
      "tenant-energy 3 128 384", "tenant-cost 1 64 448",
      "tenant-cost 2 0 512",     "tenant-cost 3 32 480",
      "tenant-cost 4 100 400",
  };
}

struct RunResult {
  double wall_s = 0.0;
  double qps = 0.0;
};

RunResult drive(serve::QueryEngine& engine, std::size_t threads,
                const std::vector<std::string>& lines, int requests_per_thread) {
  std::vector<std::string> frames;
  frames.reserve(lines.size());
  for (const std::string& line : lines) {
    const auto request = serve::parse_request_text(line);
    frames.push_back(
        serve::encode_frame(serve::encode_request(*request)));
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t thread = 0; thread < threads; ++thread)
    pool.emplace_back([&engine, &frames, requests_per_thread] {
      serve::InProcessTransport transport(engine);
      for (int i = 0; i < requests_per_thread; ++i) {
        const std::string& frame = frames[i % frames.size()];
        const std::string response = transport.roundtrip_binary(frame);
        if (response.size() <= serve::kFramePrefixBytes)
          std::fprintf(stderr, "short response\n");
      }
    });
  for (std::thread& worker : pool) worker.join();

  RunResult result;
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  result.qps = static_cast<double>(threads * requests_per_thread) /
               result.wall_s;
  return result;
}

std::string format_double(double value, const char* format) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, format, value);
  return buffer;
}

// --- pipelined completion-order latency -------------------------------------

/// Expensive-class stall applied by the server to tenant-cost queries (the
/// worker sleeps, so the machine's cores stay free for the cheap class). A
/// CPU-bound slow query would also exercise the reorder buffer, but on the
/// small CI boxes this bench runs on it starves the cheap workers of
/// timeslices and the measurement degenerates into scheduler noise.
constexpr std::chrono::milliseconds kCostStall{100};

/// The compressed TOU schedule that gives tenant-cost a real computation on
/// top of the stall: a 1.8 s "day" puts two rate boundaries in every day,
/// ~15k retention-ring searches across a 448 s window — a window wide enough
/// that back-to-back duplicates overlap in flight and coalesce.
core::TouRateSchedule expensive_tou() {
  core::TouRateSchedule tou;
  tou.offpeak_usd_per_kwh = 0.10;
  tou.peak_usd_per_kwh = 0.25;
  tou.seconds_per_hour = 0.0005;
  return tou;
}

struct PipelineItem {
  bool expensive = false;
  std::string frame;  ///< id-stamped request frame.
};

/// Mixed pipelined workload: per group, one unique expensive tenant-cost
/// window duplicated `dup` times back to back (adjacent duplicates are what
/// coalescing merges), then a run of cheap point queries. Ids are the item
/// indices.
std::vector<PipelineItem> pipeline_workload(std::size_t groups,
                                            std::size_t dup,
                                            std::size_t cheap_per_group) {
  std::vector<PipelineItem> items;
  std::uint64_t id = 0;
  const char* cheap[] = {"fleet-power", "vm-power 3 5", "tenant-power 2",
                         "stats"};
  for (std::size_t g = 0; g < groups; ++g) {
    const std::string window = "tenant-cost " + std::to_string(1 + g % 4) +
                               " " + std::to_string(20 + g) + " " +
                               std::to_string(468 + g);
    for (std::size_t d = 0; d < dup; ++d) {
      const auto request = serve::parse_request_text(window);
      items.push_back({true, serve::encode_frame_with_id(
                                 serve::encode_request(*request), id++)});
    }
    for (std::size_t c = 0; c < cheap_per_group; ++c) {
      const auto request = serve::parse_request_text(cheap[c % 4]);
      items.push_back({false, serve::encode_frame_with_id(
                                  serve::encode_request(*request), id++)});
    }
  }
  return items;
}

struct PipelineResult {
  std::vector<double> cheap_ms, expensive_ms;
  std::map<std::uint64_t, std::string> frames;  ///< id -> response frame.
  std::uint64_t evaluations = 0;  ///< engine cache misses == evals run.
  std::uint64_t coalesced = 0;
  std::uint64_t reordered = 0;
  double wall_s = 0.0;
};

/// Streams the workload over one TCP connection with a bounded in-flight
/// window (a pipelining client, not a fire-and-forget flood) and clocks each
/// request send -> response receive.
PipelineResult drive_pipelined(const serve::SnapshotStore& store,
                               bool out_of_order, bool coalesce,
                               const std::vector<PipelineItem>& items,
                               std::size_t in_flight_window,
                               bool nodelay = true) {
  using Clock = std::chrono::steady_clock;
  fleet::Metrics metrics;
  serve::QueryEngineOptions engine_options;
  engine_options.tou = expensive_tou();
  engine_options.coalesce = coalesce;
  serve::QueryEngine engine(store, engine_options);
  serve::ServerOptions server_options;
  server_options.workers = 10;
  server_options.queue_capacity = 2 * in_flight_window;
  server_options.tokens_per_s = 1e9;  // admission is not under test here.
  server_options.token_burst = 1e6;
  server_options.out_of_order = out_of_order;
  server_options.cost_query_delay = kCostStall;
  server_options.tcp_nodelay = nodelay;
  serve::Server server(engine, metrics, server_options);
  serve::Client client(server.port(), nodelay);

  PipelineResult result;
  std::vector<Clock::time_point> sent(items.size());
  const auto start = Clock::now();
  std::size_t next = 0, received = 0;
  while (received < items.size()) {
    while (next < items.size() && next - received < in_flight_window) {
      sent[next] = Clock::now();
      client.send_raw(items[next].frame);
      ++next;
    }
    const std::string frame = client.recv_frame();
    const auto now = Clock::now();
    std::uint64_t id = 0;
    for (std::size_t b = 0; b < serve::kFrameIdBytes; ++b)
      id = (id << 8) |
           static_cast<std::uint8_t>(frame[serve::kFramePrefixBytes + b]);
    const double ms =
        std::chrono::duration<double, std::milli>(now - sent[id]).count();
    (items[id].expensive ? result.expensive_ms : result.cheap_ms)
        .push_back(ms);
    result.frames.emplace(id, frame);
    ++received;
  }
  result.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.evaluations = engine.cache_misses();
  result.coalesced = engine.coalesced();
  result.reordered = static_cast<std::uint64_t>(
      metrics
          .counter("vmpower_serve_responses_reordered_total",
                   "Responses written out of their arrival position")
          .value());
  server.stop();
  return result;
}

int run_pipelined(bool quick, const char* json_path) {
  serve::SnapshotStore store(kSnapshots);
  for (std::size_t t = 1; t <= kSnapshots; ++t)
    store.publish(snapshot_at(static_cast<double>(t)));

  const std::size_t groups = quick ? 3 : 10;
  const std::size_t dup = 2;
  const std::size_t cheap_per_group = 600;
  const std::size_t in_flight = 16;
  const auto items = pipeline_workload(groups, dup, cheap_per_group);

  util::print_banner("pipelined completion order (TCP, 10 workers)");
  std::printf(
      "%zu requests on one pipelined connection (window %zu): %zu expensive "
      "tenant-cost\nwindows (x%zu duplicates, ~15k TOU boundaries + 100 ms stall each) "
      "interleaved with %zu cheap\npoint queries per group\n",
      items.size(), in_flight, groups, dup, groups * cheap_per_group);

  const struct {
    const char* name;
    bool out_of_order, coalesce, nodelay;
  } modes[] = {{"ordered", false, false, true},
               {"ooo", true, false, true},
               {"ooo+coal", true, true, true},
               {"ooo nodelay=off", true, false, false}};
  constexpr int kModes = 4;

  PipelineResult results[kModes];
  for (int m = 0; m < kModes; ++m)
    results[m] =
        drive_pipelined(store, modes[m].out_of_order, modes[m].coalesce,
                        items, in_flight, modes[m].nodelay);

  // Byte identity per request id across every mode.
  bool identical = true;
  for (int m = 1; m < kModes; ++m)
    for (const auto& [id, frame] : results[0].frames) {
      const auto it = results[m].frames.find(id);
      if (it == results[m].frames.end() || it->second != frame) {
        identical = false;
        std::fprintf(stderr, "BYTE MISMATCH: id %llu mode %s\n",
                     static_cast<unsigned long long>(id), modes[m].name);
      }
    }

  util::TablePrinter table({"mode", "class", "p50 (ms)", "p99 (ms)",
                            "wall (ms)", "evals", "coalesced", "reordered"});
  for (int m = 0; m < kModes; ++m) {
    const PipelineResult& r = results[m];
    table.add_row({modes[m].name, "cheap",
                   format_double(util::percentile(r.cheap_ms, 50.0),
                                 "%.3f"),
                   format_double(util::percentile(r.cheap_ms, 99.0),
                                 "%.3f"),
                   format_double(r.wall_s * 1e3, "%.1f"),
                   std::to_string(r.evaluations),
                   std::to_string(r.coalesced),
                   std::to_string(r.reordered)});
    table.add_row(
        {modes[m].name, "expensive",
         format_double(util::percentile(r.expensive_ms, 50.0), "%.3f"),
         format_double(util::percentile(r.expensive_ms, 99.0), "%.3f"),
         "", "", "", ""});
  }
  table.print();

  const double ordered_p99 = util::percentile(results[0].cheap_ms, 99.0);
  const double ooo_p99 = util::percentile(results[1].cheap_ms, 99.0);
  const double speedup = ordered_p99 / ooo_p99;
  const bool dedup = results[2].evaluations < results[1].evaluations &&
                     results[2].coalesced > 0;
  const bool pass = speedup >= 2.0 && dedup && identical;
  std::printf(
      "\ncheap p99: ordered %.3f ms vs out-of-order %.3f ms -> %.1fx "
      "(acceptance >= 2x)\nTCP_NODELAY: cheap p50 %.3f ms on vs %.3f ms off "
      "(measured, not asserted —\nloopback hides most of Nagle's cost)\n"
      "coalescing: %llu -> %llu evaluations (%llu "
      "attached in flight)\nbyte-identical responses per id across modes: "
      "%s\nACCEPTANCE: %s\n",
      ordered_p99, ooo_p99, speedup,
      util::percentile(results[1].cheap_ms, 50.0),
      util::percentile(results[3].cheap_ms, 50.0),
      static_cast<unsigned long long>(results[1].evaluations),
      static_cast<unsigned long long>(results[2].evaluations),
      static_cast<unsigned long long>(results[2].coalesced),
      identical ? "yes" : "NO", pass ? "pass" : "FAIL");

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    char date[16] = "unknown";
    const std::time_t now_t = std::time(nullptr);
    if (std::tm* tm = std::localtime(&now_t))
      std::strftime(date, sizeof date, "%Y-%m-%d", tm);
    std::fprintf(out,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"date\": \"%s\",\n"
                 "    \"benchmark\": \"bench_serve_throughput --pipelined\",\n"
                 "    \"build_type\": \"Release\",\n"
                 "    \"config\": {\n"
                 "      \"requests\": %zu,\n"
                 "      \"groups\": %zu,\n"
                 "      \"duplicates_per_window\": %zu,\n"
                 "      \"cheap_per_group\": %zu,\n"
                 "      \"in_flight_window\": %zu,\n"
                 "      \"workers\": 10,\n"
                 "      \"cost_stall_ms\": %lld,\n"
                 "      \"tou_boundaries_per_cost_query\": \"~15k\"\n"
                 "    }\n"
                 "  },\n"
                 "  \"results\": [\n",
                 date, items.size(), groups, dup, cheap_per_group, in_flight,
                 static_cast<long long>(kCostStall.count()));
    for (int m = 0; m < kModes; ++m) {
      const PipelineResult& r = results[m];
      std::fprintf(
          out,
          "    {\"mode\": \"%s\", \"cheap_p50_ms\": %.3f, "
          "\"cheap_p99_ms\": %.3f, \"expensive_p50_ms\": %.3f, "
          "\"expensive_p99_ms\": %.3f, \"wall_ms\": %.1f, "
          "\"evaluations\": %llu, \"coalesced\": %llu, "
          "\"reordered\": %llu}%s\n",
          modes[m].name, util::percentile(r.cheap_ms, 50.0),
          util::percentile(r.cheap_ms, 99.0),
          util::percentile(r.expensive_ms, 50.0),
          util::percentile(r.expensive_ms, 99.0), r.wall_s * 1e3,
          static_cast<unsigned long long>(r.evaluations),
          static_cast<unsigned long long>(r.coalesced),
          static_cast<unsigned long long>(r.reordered),
          m + 1 < kModes ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"acceptance\": {\n"
                 "    \"criterion\": \"cheap p99 out-of-order >= 2x lower "
                 "than ordered; coalescing reduces evaluations; responses "
                 "byte-identical per id across modes\",\n"
                 "    \"cheap_p99_speedup\": %.1f,\n"
                 "    \"byte_identical\": %s,\n"
                 "    \"pass\": %s\n"
                 "  }\n"
                 "}\n",
                 speedup, identical ? "true" : "false",
                 pass ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return pass ? 0 : 1;
}

int run_throughput(bool quick) {
  serve::SnapshotStore store(kSnapshots);
  for (std::size_t t = 1; t <= kSnapshots; ++t)
    store.publish(snapshot_at(static_cast<double>(t)));

  core::TouRateSchedule tou;
  tou.offpeak_usd_per_kwh = 0.10;
  tou.peak_usd_per_kwh = 0.25;
  // A compressed 12 s day puts ~85 rate boundaries inside the ring, the
  // granularity a year-long accounting horizon would have at full scale.
  tou.seconds_per_hour = 0.5;

  const int requests_per_thread = quick ? 2000 : 20000;
  util::print_banner("query service throughput (in-process transport)");
  std::printf("hardware threads: %u | %zu snapshots x %zu VMs | %d req/thread\n",
              std::thread::hardware_concurrency(), kSnapshots,
              kHosts * kVmsPerHost, requests_per_thread);

  const struct {
    const char* name;
    std::vector<std::string> lines;
  } workloads[] = {{"point", point_workload()},
                   {"window+cost", window_workload()}};

  util::TablePrinter table({"workload", "threads", "cache", "wall (ms)", "QPS",
                            "hit rate", "speedup"});
  for (const auto& workload : workloads)
    for (const std::size_t threads : {1u, 2u, 4u}) {
      serve::QueryEngineOptions uncached_options;
      uncached_options.cache_capacity = 0;
      uncached_options.tou = tou;
      serve::QueryEngine uncached(store, uncached_options);
      const RunResult cold =
          drive(uncached, threads, workload.lines, requests_per_thread);

      serve::QueryEngineOptions cached_options;
      cached_options.tou = tou;
      serve::QueryEngine cached(store, cached_options);
      const RunResult warm =
          drive(cached, threads, workload.lines, requests_per_thread);
      const double total = static_cast<double>(cached.cache_hits() +
                                               cached.cache_misses());
      const double hit_rate =
          total > 0.0 ? static_cast<double>(cached.cache_hits()) / total : 0.0;

      table.add_row({workload.name, std::to_string(threads), "off",
                     format_double(cold.wall_s * 1e3, "%.1f"),
                     format_double(cold.qps, "%.0f"), "-", "1.0x"});
      table.add_row({workload.name, std::to_string(threads), "on",
                     format_double(warm.wall_s * 1e3, "%.1f"),
                     format_double(warm.qps, "%.0f"),
                     format_double(100.0 * hit_rate, "%.1f%%"),
                     format_double(warm.qps / cold.qps, "%.1fx")});
    }
  table.print();
  std::printf(
      "\ncached vs uncached compare identical workloads. The acceptance bar\n"
      "is >= 5x on the repeated window+cost mix: uncached, every tenant-cost\n"
      "re-walks its TOU segments with one retention-ring search per rate\n"
      "boundary; cached, the epoch-keyed LRU replays the pinned epoch pair.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false, pipelined_only = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--pipelined") == 0) pipelined_only = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }
  int status = 0;
  if (!pipelined_only) status = run_throughput(quick);
  if (status == 0) status = run_pipelined(quick, json_path);
  return status;
}
