// Reproduces Fig. 1: two users rent the same VM type over [T0, T5] but use
// it differently; user B consumes ~33 % more energy yet pays the same under
// per-instance-hour pricing.
//
// We run both usage patterns through the simulator on identical VMs and
// meter their energy with the Shapley pipeline.
#include <cstdio>

#include "common/units.hpp"
#include "common/vm_config.hpp"
#include "core/accountant.hpp"
#include "core/collector.hpp"
#include "core/estimator.hpp"
#include "sim/physical_machine.hpp"
#include "util/table.hpp"
#include "workload/user_pattern.hpp"

using namespace vmp;

int main() {
  const sim::MachineSpec spec = sim::xeon_prototype();
  const common::VmConfig instance = common::paper_vm_type(1);
  const std::vector<common::VmConfig> fleet = {instance, instance};

  core::CollectionOptions options;
  options.duration_s = 300.0;
  const auto dataset = core::collect_offline_dataset(spec, fleet, options);
  core::ShapleyVhcEstimator estimator(dataset.universe, dataset.approximation);

  sim::PhysicalMachine machine(spec, 2026);
  const auto vm_a =
      machine.hypervisor().create_vm(instance, wl::make_user_a_pattern());
  const auto vm_b =
      machine.hypervisor().create_vm(instance, wl::make_user_b_pattern());
  machine.hypervisor().start_vm(vm_a);
  machine.hypervisor().start_vm(vm_b);

  core::EnergyAccountant accountant(core::IdleAttribution::kNone);
  const double horizon_s = 5.0 * wl::kUserPatternPhaseSeconds;

  // Per-interval energy, to print the staircase of Fig. 1.
  double interval_a[5] = {}, interval_b[5] = {};
  for (double t = 0.0; t < horizon_s; t += 1.0) {
    const auto frame = machine.step(1.0);
    const double adjusted =
        std::max(0.0, frame.active_power_w - machine.idle_power_w());
    std::vector<core::VmSample> samples;
    for (const auto& obs : machine.hypervisor().observations())
      samples.push_back({obs.id, obs.type_id, obs.state});
    const auto phi = estimator.estimate(samples, adjusted);
    accountant.add_sample(samples, phi, machine.idle_power_w(), 1.0);
    const auto k =
        static_cast<std::size_t>(t / wl::kUserPatternPhaseSeconds);
    interval_a[k] += phi[0];
    interval_b[k] += phi[1];
  }

  util::print_banner("Fig. 1: power usage patterns of two users on identical VMs");
  util::TablePrinter table({"interval", "user A avg power (W)",
                            "user B avg power (W)"});
  for (int k = 0; k < 5; ++k) {
    char label[16];
    std::snprintf(label, sizeof label, "[T%d, T%d]", k, k + 1);
    table.add_row(
        {label,
         util::TablePrinter::num(interval_a[k] / wl::kUserPatternPhaseSeconds, 2),
         util::TablePrinter::num(interval_b[k] / wl::kUserPatternPhaseSeconds, 2)});
  }
  table.print();

  const double kwh_a = common::joules_to_kwh(accountant.energy_j(vm_a));
  const double kwh_b = common::joules_to_kwh(accountant.energy_j(vm_b));
  std::printf("\nmetered energy over [T0, T5]: user A %.5f kWh, user B %.5f "
              "kWh\n",
              kwh_a, kwh_b);
  std::printf("user B / user A = %.3f   (paper: user B consumes 33%% more "
              "energy -> ratio ~1.33)\n",
              kwh_b / kwh_a);
  std::printf("under per-instance-hour pricing both pay the same; "
              "energy-metered pricing\ncharges B %.0f%% more.\n",
              100.0 * (kwh_b / kwh_a - 1.0));
  return 0;
}
