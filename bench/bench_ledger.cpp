// Durable attribution ledger benchmarks: append throughput, crash-recovery
// time as a function of log size, and hot (retention ring) vs cold (ledger
// fall-through) window query latency.
//
// Section 1 — append: records mirror a 128-VM fleet snapshot (~1.9 KB
// framed). Appends are measured once against a pure WAL (compaction off)
// and once with the background compactor racing the writer, so the delta is
// the compaction interference an engine tick would actually see.
//
// Section 2 — recovery: a freshly opened Ledger scans every WAL frame and
// validates every cold footer before the first append. Recovery time is
// reported per log size with the same record shape, WAL-only vs compacted —
// compacted logs recover from their footers and should be near-flat.
//
// Section 3 — hot vs cold: the same window query is answered by a store
// whose ring still holds the window, then by a store whose ring lost it
// (small retention) and a ledger answers through the fall-through. The
// acceptance bar is byte-identical encoded responses — the cold path must
// be indistinguishable from the ring it replaces, in content if not in
// latency — plus cold latency staying in single-digit milliseconds.
//
// --quick trims sizes for the CI smoke job; --json PATH writes a
// BENCH_ledger.json blob.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ledger/format.hpp"
#include "ledger/ledger.hpp"
#include "serve/protocol.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace vmp;

namespace {

constexpr std::size_t kHosts = 16;
constexpr std::size_t kVmsPerHost = 8;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Synthetic fleet trajectory with linear cumulative energies (as in
/// bench_serve_throughput), so spot checks catch any miscount.
serve::Snapshot snapshot_at(double t) {
  serve::Snapshot snapshot;
  snapshot.tick = static_cast<std::uint64_t>(t);
  snapshot.time_s = t;
  snapshot.vms.reserve(kHosts * kVmsPerHost);
  for (std::uint32_t host = 0; host < kHosts; ++host)
    for (std::uint32_t vm = 1; vm <= kVmsPerHost; ++vm) {
      serve::VmRecord record;
      record.host = host;
      record.vm = vm;
      record.tenant = 1 + (host + vm) % 4;
      record.power_w = 10.0 + vm;
      record.energy_j = (10.0 + vm) * t;
      snapshot.vms.push_back(record);
      snapshot.total_power_w += record.power_w;
    }
  for (core::TenantId tenant = 1; tenant <= 4; ++tenant) {
    serve::TenantRecord record;
    record.tenant = tenant;
    record.power_w = 100.0;
    record.energy_j = 100.0 * t;
    snapshot.tenants.push_back(record);
  }
  snapshot.total_energy_j = snapshot.total_power_w * t;
  return snapshot;
}

ledger::TickRecord record_at(std::uint64_t epoch) {
  serve::Snapshot snapshot = snapshot_at(static_cast<double>(epoch));
  snapshot.epoch = epoch;
  return serve::to_record(snapshot);
}

/// Unique scratch directory under the system temp root; removed by the
/// caller once its section passes.
std::filesystem::path scratch_dir(const char* tag) {
  const auto stamp = static_cast<unsigned long long>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return std::filesystem::temp_directory_path() /
         ("vmpower-bench-ledger-" + std::string(tag) + "-" +
          std::to_string(stamp));
}

std::string format_double(double value, const char* format) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, format, value);
  return buffer;
}

struct AppendResult {
  double records_per_s = 0.0;
  double mb_per_s = 0.0;
};

AppendResult run_append(std::size_t records, bool compact) {
  const std::filesystem::path dir = scratch_dir(compact ? "appc" : "app");
  AppendResult result;
  {
    ledger::LedgerOptions options;
    options.dir = dir;
    options.segment_max_records = 4096;
    options.auto_compact = compact;
    options.background_compaction = compact;
    ledger::Ledger log(options);
    const auto start = Clock::now();
    for (std::uint64_t epoch = 1; epoch <= records; ++epoch)
      log.append(record_at(epoch));
    const double wall_s = ms_since(start) / 1e3;
    const ledger::Stats stats = log.stats();
    result.records_per_s = static_cast<double>(records) / wall_s;
    result.mb_per_s =
        static_cast<double>(stats.appended_bytes) / (1 << 20) / wall_s;
  }
  std::filesystem::remove_all(dir);
  return result;
}

double run_recovery(std::size_t records, bool compacted, std::size_t runs) {
  const std::filesystem::path dir = scratch_dir(compacted ? "recc" : "rec");
  {
    ledger::LedgerOptions options;
    options.dir = dir;
    options.segment_max_records = 4096;
    options.auto_compact = false;
    options.background_compaction = false;
    ledger::Ledger log(options);
    for (std::uint64_t epoch = 1; epoch <= records; ++epoch)
      log.append(record_at(epoch));
    if (compacted) log.compact_all();
  }
  std::vector<double> times_ms;
  for (std::size_t run = 0; run < runs; ++run) {
    ledger::LedgerOptions options;
    options.dir = dir;
    options.auto_compact = false;
    options.background_compaction = false;
    const auto start = Clock::now();
    ledger::Ledger log(options);
    times_ms.push_back(ms_since(start));
  }
  std::filesystem::remove_all(dir);
  return util::percentile(times_ms, 50.0);
}

struct QueryLatency {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::string encoded;  ///< encoded response bytes of the last execution.
};

QueryLatency time_query(serve::QueryEngine& engine,
                        const serve::Request& request, std::size_t iters) {
  QueryLatency latency;
  std::vector<double> times_ms;
  times_ms.reserve(iters);
  serve::Response response;
  for (std::size_t i = 0; i < iters; ++i) {
    const auto start = Clock::now();
    response = engine.execute(request);
    times_ms.push_back(ms_since(start));
  }
  latency.p50_ms = util::percentile(times_ms, 50.0);
  latency.p99_ms = util::percentile(times_ms, 99.0);
  latency.encoded = serve::encode_response(response);
  return latency;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const std::size_t append_records = quick ? 4000 : 40000;
  const std::size_t history = quick ? 4096 : 16384;
  const std::size_t query_iters = quick ? 200 : 2000;

  // --- Section 1: append throughput ---------------------------------------
  util::print_banner("ledger append throughput");
  const AppendResult wal_only = run_append(append_records, false);
  const AppendResult racing = run_append(append_records, true);
  util::TablePrinter append_table(
      {"mode", "records", "records/s", "MB/s"});
  append_table.add_row({"wal only", std::to_string(append_records),
                        format_double(wal_only.records_per_s, "%.0f"),
                        format_double(wal_only.mb_per_s, "%.1f")});
  append_table.add_row({"compactor racing", std::to_string(append_records),
                        format_double(racing.records_per_s, "%.0f"),
                        format_double(racing.mb_per_s, "%.1f")});
  append_table.print();

  // --- Section 2: recovery time vs log size -------------------------------
  util::print_banner("recovery time vs log size");
  const std::size_t sizes[] = {history / 4, history / 2, history};
  const std::size_t recovery_runs = quick ? 2 : 5;
  util::TablePrinter recovery_table(
      {"records", "wal-only (ms)", "compacted (ms)"});
  double recovery_ms[3][2] = {};
  for (int i = 0; i < 3; ++i) {
    recovery_ms[i][0] = run_recovery(sizes[i], false, recovery_runs);
    recovery_ms[i][1] = run_recovery(sizes[i], true, recovery_runs);
    recovery_table.add_row({std::to_string(sizes[i]),
                            format_double(recovery_ms[i][0], "%.1f"),
                            format_double(recovery_ms[i][1], "%.1f")});
  }
  recovery_table.print();
  std::printf(
      "wal-only recovery scans every frame; compacted logs load by footer\n"
      "and should stay near-flat in the record count.\n");

  // --- Section 3: hot vs cold window query latency ------------------------
  util::print_banner("hot vs cold window queries");
  const std::filesystem::path dir = scratch_dir("query");
  int status = 0;
  {
    // Cold setup: a small ring over a long compacted history.
    ledger::LedgerOptions options;
    options.dir = dir;
    options.segment_max_records = 1024;
    options.auto_compact = false;  // compact once, below, for determinism.
    options.background_compaction = false;
    ledger::Ledger log(options);
    serve::SnapshotStore cold_store(256);
    cold_store.set_ledger(&log);
    // Hot setup: a ring wide enough that the whole history stays resident.
    serve::SnapshotStore hot_store(history);
    for (std::uint64_t epoch = 1; epoch <= history; ++epoch) {
      const serve::Snapshot snapshot = snapshot_at(static_cast<double>(epoch));
      hot_store.publish(snapshot);
      cold_store.publish(snapshot);
    }
    log.compact_all();

    serve::Request window;
    window.kind = serve::QueryKind::kTenantEnergy;
    window.tenant = 2;
    window.t0 = static_cast<double>(history / 8);      // deep history.
    window.t1 = static_cast<double>(history / 8 + 64);
    serve::QueryEngineOptions uncached;
    uncached.cache_capacity = 0;  // measure resolution, not the LRU.
    serve::QueryEngine hot_engine(hot_store, uncached);
    serve::QueryEngine cold_engine(cold_store, uncached);

    const QueryLatency hot = time_query(hot_engine, window, query_iters);
    const QueryLatency cold = time_query(cold_engine, window, query_iters);
    const bool identical = hot.encoded == cold.encoded;

    util::TablePrinter query_table({"path", "p50 (ms)", "p99 (ms)"});
    query_table.add_row({"hot (ring)", format_double(hot.p50_ms, "%.4f"),
                         format_double(hot.p99_ms, "%.4f")});
    query_table.add_row({"cold (ledger)", format_double(cold.p50_ms, "%.4f"),
                         format_double(cold.p99_ms, "%.4f")});
    query_table.print();
    const bool pass = identical && cold.p50_ms < 10.0;
    std::printf(
        "window [%0.f, %0.f] over %zu-epoch history (ring retains 256)\n"
        "byte-identical hot vs cold responses: %s | cold p50 < 10 ms: %s\n"
        "ACCEPTANCE: %s\n",
        window.t0, window.t1, history, identical ? "yes" : "NO",
        cold.p50_ms < 10.0 ? "yes" : "NO", pass ? "pass" : "FAIL");
    if (!pass) status = 1;

    if (json_path != nullptr) {
      std::FILE* out = std::fopen(json_path, "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", json_path);
        std::filesystem::remove_all(dir);
        return 1;
      }
      char date[16] = "unknown";
      const std::time_t now_t = std::time(nullptr);
      if (std::tm* tm = std::localtime(&now_t))
        std::strftime(date, sizeof date, "%Y-%m-%d", tm);
      std::fprintf(
          out,
          "{\n"
          "  \"context\": {\n"
          "    \"date\": \"%s\",\n"
          "    \"benchmark\": \"bench_ledger\",\n"
          "    \"build_type\": \"Release\",\n"
          "    \"config\": {\n"
          "      \"vms_per_record\": %zu,\n"
          "      \"append_records\": %zu,\n"
          "      \"history_epochs\": %zu,\n"
          "      \"ring_retention_cold\": 256,\n"
          "      \"segment_max_records\": 1024,\n"
          "      \"query_iterations\": %zu\n"
          "    }\n"
          "  },\n"
          "  \"append\": {\n"
          "    \"wal_only_records_per_s\": %.0f,\n"
          "    \"wal_only_mb_per_s\": %.1f,\n"
          "    \"compactor_racing_records_per_s\": %.0f,\n"
          "    \"compactor_racing_mb_per_s\": %.1f\n"
          "  },\n"
          "  \"recovery_ms\": [\n",
          date, kHosts * kVmsPerHost, append_records, history, query_iters,
          wal_only.records_per_s, wal_only.mb_per_s, racing.records_per_s,
          racing.mb_per_s);
      for (int i = 0; i < 3; ++i)
        std::fprintf(out,
                     "    {\"records\": %zu, \"wal_only_ms\": %.1f, "
                     "\"compacted_ms\": %.1f}%s\n",
                     sizes[i], recovery_ms[i][0], recovery_ms[i][1],
                     i < 2 ? "," : "");
      std::fprintf(
          out,
          "  ],\n"
          "  \"window_query\": {\n"
          "    \"hot_p50_ms\": %.4f,\n"
          "    \"hot_p99_ms\": %.4f,\n"
          "    \"cold_p50_ms\": %.4f,\n"
          "    \"cold_p99_ms\": %.4f\n"
          "  },\n"
          "  \"acceptance\": {\n"
          "    \"criterion\": \"cold (ledger fall-through) responses "
          "byte-identical to hot (ring) responses; cold p50 < 10 ms\",\n"
          "    \"byte_identical\": %s,\n"
          "    \"pass\": %s\n"
          "  }\n"
          "}\n",
          hot.p50_ms, hot.p99_ms, cold.p50_ms, cold.p99_ms,
          identical ? "true" : "false", pass ? "true" : "false");
      std::fclose(out);
      std::printf("wrote %s\n", json_path);
    }
  }
  std::filesystem::remove_all(dir);
  return status;
}
