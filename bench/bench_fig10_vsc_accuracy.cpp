// Reproduces Fig. 10: accuracy of the VHC-based linear approximation of
// v(S, C).
//
// Setup mirrors Sec. VII-B: mapping vectors are fitted from synthetic
// random-CPU runs, then validated by running the SPEC CPU2006 subset
// (Table V) on (a) a homogeneous coalition of four VM1s and (b) a
// heterogeneous coalition {VM1..VM4}, comparing the predicted v(S, C)
// against the measured (idle-adjusted) machine power sample by sample.
//
// Paper: per-benchmark average relative errors < 5.33 %, ~90 % of samples
// below 5 %, maximum 11.71 %.
#include <cstdio>
#include <vector>

#include "common/vm_config.hpp"
#include "core/collector.hpp"
#include "sim/physical_machine.hpp"
#include "sim/runner.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

using namespace vmp;

namespace {

struct CaseResult {
  std::vector<double> errors;  // pooled over all benchmarks
};

// Validates the fitted approximation on one benchmark: every VM of the fleet
// runs `benchmark`; returns per-sample relative errors of the predicted
// grand-coalition worth vs the measured adjusted power.
std::vector<double> validate_benchmark(const sim::MachineSpec& spec,
                                       const std::vector<common::VmConfig>& fleet,
                                       const core::OfflineDataset& dataset,
                                       wl::SpecBenchmark benchmark,
                                       double duration_s, std::uint64_t seed) {
  sim::PhysicalMachine machine(spec, seed);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto id = machine.hypervisor().create_vm(
        fleet[i], wl::make_spec_workload(benchmark, seed * 131 + i));
    machine.hypervisor().start_vm(id);
  }
  const sim::ScenarioTrace trace = sim::run_scenario(machine, duration_s);

  const core::VhcComboMask grand_combo =
      static_cast<core::VhcComboMask>((1u << dataset.universe.size()) - 1);
  std::vector<double> errors;
  errors.reserve(trace.size());
  for (std::size_t k = 0; k < trace.size(); ++k) {
    std::vector<common::StateVector> aggregated(dataset.universe.size());
    for (const auto& obs : trace.states.records()[k].observations)
      aggregated[dataset.universe.index_of(obs.type_id)] += obs.state;
    const double predicted =
        dataset.approximation.predict(grand_combo, aggregated);
    const double measured =
        std::max(0.0, trace.measured_power[k] - spec.idle_power_w);
    errors.push_back(util::relative_error(predicted, measured));
  }
  return errors;
}

CaseResult run_case(const char* title,
                    const std::vector<common::VmConfig>& fleet,
                    const char* paper_note) {
  const sim::MachineSpec spec = sim::xeon_prototype();

  core::CollectionOptions options;
  options.duration_s = 600.0;
  const core::OfflineDataset dataset =
      core::collect_offline_dataset(spec, fleet, options);

  util::print_banner(title);
  std::printf("fitted CPU mapping weights per VHC (grand combo): ");
  const core::VhcComboMask grand_combo =
      static_cast<core::VhcComboMask>((1u << dataset.universe.size()) - 1);
  const auto weights = dataset.approximation.weights(grand_combo);
  for (std::size_t j = 0; j < dataset.universe.size(); ++j)
    std::printf("w%zu=%.2f ", j + 1, weights[j * common::kNumComponents]);
  std::printf("\n%s\n\n", paper_note);

  CaseResult result;
  util::TablePrinter table({"benchmark", "mean err", "p90 err", "max err",
                            "<5% of samples"});
  std::uint64_t seed = 9000;
  for (const wl::SpecBenchmark benchmark : wl::spec_subset()) {
    const auto errors =
        validate_benchmark(spec, fleet, dataset, benchmark, 300.0, ++seed);
    const util::Summary summary = util::summarize(errors);
    table.add_row({to_string(benchmark),
                   util::TablePrinter::pct(summary.mean, 2),
                   util::TablePrinter::pct(summary.p90, 2),
                   util::TablePrinter::pct(summary.max, 2),
                   util::TablePrinter::pct(
                       util::fraction_below(errors, 0.05), 1)});
    result.errors.insert(result.errors.end(), errors.begin(), errors.end());
  }
  table.print();
  return result;
}

}  // namespace

int main() {
  const auto catalogue = common::paper_vm_catalogue();

  const CaseResult homogeneous = run_case(
      "Fig. 10(a): homogeneous coalition (4 x VM1)",
      {catalogue[0], catalogue[0], catalogue[0], catalogue[0]},
      "paper fitted w1 = 9.42 for this case (per-unit weight < 13.15 because "
      "of\nsibling contention)");

  const CaseResult heterogeneous = run_case(
      "Fig. 10(b): heterogeneous coalition {VM1, VM2, VM3, VM4}",
      {catalogue[0], catalogue[1], catalogue[2], catalogue[3]},
      "paper fitted [w1..w4] = [16.98, 17.91, 23.42, 75.21]");

  // Fig. 10(c): pooled error distribution.
  std::vector<double> pooled = homogeneous.errors;
  pooled.insert(pooled.end(), heterogeneous.errors.begin(),
                heterogeneous.errors.end());
  const util::Summary summary = util::summarize(pooled);

  util::print_banner("Fig. 10(c): distribution of relative errors (pooled)");
  util::Histogram histogram(0.0, 0.15, 15);
  histogram.add_all(pooled);
  std::fputs(histogram.render().c_str(), stdout);

  const double below5 = util::fraction_below(pooled, 0.05);
  std::printf("\nsamples: %zu   mean=%.2f%%  p90=%.2f%%  max=%.2f%%  "
              "<5%%: %.1f%%\n",
              summary.count, 100.0 * summary.mean, 100.0 * summary.p90,
              100.0 * summary.max, 100.0 * below5);
  std::printf("paper: max 11.71%%, ~90%% of estimations below 5%% error, "
              "per-benchmark\naverages below 5.33%%.\n");

  util::CsvWriter csv("fig10_errors.csv", {"error"});
  for (double e : pooled) csv.write_row(std::vector<double>{e});
  std::printf("raw errors written to fig10_errors.csv (%zu rows)\n",
              pooled.size());
  return 0;
}
