// Microbenchmarks for the paper's Sec. V-B complexity analysis.
//
// Exact Shapley needs 2^n worth evaluations; the paper argues n <= 16 on
// real hosts, so the overhead is "very low" (2^16 = 65536 operations). These
// benchmarks quantify that claim on this implementation and measure the two
// escape hatches for larger games: Monte-Carlo permutation sampling and the
// VHC estimator whose cost is 2^n table lookups but whose *measurement* cost
// is only 2^r.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/monte_carlo.hpp"
#include "core/shapley.hpp"
#include "util/rng.hpp"

namespace {

using vmp::core::Coalition;
using vmp::core::WorthFn;

// A synthetic sub-additive game of n players (cheap to evaluate, so the
// benchmark measures the Shapley machinery, not the worth function).
std::vector<double> make_game_table(std::size_t n, std::uint64_t seed) {
  vmp::util::Rng rng(seed);
  std::vector<double> standalone(n);
  for (double& w : standalone) w = rng.uniform(5.0, 15.0);
  std::vector<double> worth(std::size_t{1} << n, 0.0);
  for (std::size_t mask = 1; mask < worth.size(); ++mask) {
    double sum = 0.0;
    int members = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::size_t{1} << i)) {
        sum += standalone[i];
        ++members;
      }
    // 3 % pairwise contention decline.
    worth[mask] = sum * (1.0 - 0.03 * (members - 1));
  }
  return worth;
}

void BM_ExactShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto table = make_game_table(n, 42);
  const WorthFn v = [&](Coalition s) { return table[s.mask()]; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmp::core::shapley_values(n, v));
  }
  state.SetComplexityN(static_cast<std::int64_t>(1) << n);
}
BENCHMARK(BM_ExactShapley)->DenseRange(2, 16, 2)->Complexity(benchmark::oN);

void BM_MonteCarloShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto permutations = static_cast<std::size_t>(state.range(1));
  const auto table = make_game_table(n, 42);
  const WorthFn v = [&](Coalition s) { return table[s.mask()]; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmp::core::monte_carlo_shapley(n, v, {.permutations = permutations}));
  }
}
BENCHMARK(BM_MonteCarloShapley)
    ->ArgsProduct({{8, 16, 24}, {100, 400}});

void BM_ShapleyWeights(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s)
      sum += vmp::core::shapley_weight(n, s);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ShapleyWeights)->Arg(16)->Arg(30);

void BM_SubsetEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Coalition grand = Coalition::grand(n);
  for (auto _ : state) {
    std::size_t count = 0;
    vmp::core::for_each_subset(grand, [&](Coalition) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->DenseRange(8, 20, 4);

}  // namespace

BENCHMARK_MAIN();
