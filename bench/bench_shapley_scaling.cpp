// Microbenchmarks for the paper's Sec. V-B complexity analysis.
//
// Exact Shapley needs 2^n worth evaluations; the paper argues n <= 16 on
// real hosts, so the overhead is "very low" (2^16 = 65536 operations). These
// benchmarks quantify that claim on this implementation and measure the two
// escape hatches for larger games: Monte-Carlo permutation sampling and the
// VHC estimator whose cost is 2^n table lookups but whose *measurement* cost
// is only 2^r.
// Beyond the registered microbenchmarks, `--sampled-curves [--quick]
// [--out FILE]` runs the exact-vs-sampled accuracy/latency sweep (n = 8..64
// on an all-distinct worst-case game) and emits a {"sampled_curves": [...]}
// JSON document for BENCH_shapley.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/state_vector.hpp"
#include "core/estimator.hpp"
#include "core/linear_approx.hpp"
#include "core/monte_carlo.hpp"
#include "core/shapley.hpp"
#include "core/shapley_fast.hpp"
#include "core/shapley_sampled.hpp"
#include "core/vhc.hpp"
#include "core/vsc_table.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using vmp::core::Coalition;
using vmp::core::WorthFn;

// A synthetic sub-additive game of n players (cheap to evaluate, so the
// benchmark measures the Shapley machinery, not the worth function).
std::vector<double> make_game_table(std::size_t n, std::uint64_t seed) {
  vmp::util::Rng rng(seed);
  std::vector<double> standalone(n);
  for (double& w : standalone) w = rng.uniform(5.0, 15.0);
  std::vector<double> worth(std::size_t{1} << n, 0.0);
  for (std::size_t mask = 1; mask < worth.size(); ++mask) {
    double sum = 0.0;
    int members = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::size_t{1} << i)) {
        sum += standalone[i];
        ++members;
      }
    // 3 % pairwise contention decline.
    worth[mask] = sum * (1.0 - 0.03 * (members - 1));
  }
  return worth;
}

void BM_ExactShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto table = make_game_table(n, 42);
  const WorthFn v = [&](Coalition s) { return table[s.mask()]; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmp::core::shapley_values(n, v));
  }
  state.SetComplexityN(static_cast<std::int64_t>(1) << n);
}
BENCHMARK(BM_ExactShapley)->DenseRange(2, 16, 2)->Complexity(benchmark::oN);

void BM_MonteCarloShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto permutations = static_cast<std::size_t>(state.range(1));
  const auto table = make_game_table(n, 42);
  const WorthFn v = [&](Coalition s) { return table[s.mask()]; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmp::core::monte_carlo_shapley(n, v, {.permutations = permutations}));
  }
}
BENCHMARK(BM_MonteCarloShapley)
    ->ArgsProduct({{8, 16, 24}, {100, 400}});

// --- fast kernels ------------------------------------------------------------
//
// The three accelerations from the metering hot path: symmetry-collapsed
// enumeration (compositions instead of masks when VMs duplicate), the
// thread-parallel mask sweep with deterministic reduction, and the
// estimator-level tick that stacks both on the batched worth evaluator.

vmp::core::SymmetryGroups make_groups(std::size_t n, std::size_t n_groups) {
  vmp::core::SymmetryGroups groups;
  groups.group_of.resize(n);
  groups.members.resize(n_groups);
  for (std::size_t i = 0; i < n; ++i) {
    groups.group_of[i] = i % n_groups;
    groups.members[i % n_groups].push_back(static_cast<vmp::core::Player>(i));
  }
  return groups;
}

void BM_CollapsedShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto types = static_cast<std::size_t>(state.range(1));
  const auto groups = make_groups(n, types);
  // Same game law as BM_ExactShapley, restated over groups so it is
  // symmetric within each: standalone sum with 3 % pairwise contention.
  vmp::util::Rng rng(42);
  std::vector<double> standalone(types);
  for (double& w : standalone) w = rng.uniform(5.0, 15.0);
  const WorthFn v = [&](Coalition s) {
    double sum = 0.0;
    int members = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (s.contains(static_cast<vmp::core::Player>(i))) {
        sum += standalone[groups.group_of[i]];
        ++members;
      }
    return members == 0 ? 0.0 : sum * (1.0 - 0.03 * (members - 1));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmp::core::shapley_values_grouped(groups, v));
  }
}
BENCHMARK(BM_CollapsedShapley)
    ->ArgsProduct({{8, 12, 16}, {2, 4}})
    ->ArgNames({"n", "types"});

void BM_ParallelShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto table = make_game_table(n, 42);
  const WorthFn v = [&](Coalition s) { return table[s.mask()]; };
  vmp::util::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmp::core::shapley_values_parallel(n, v, pool));
  }
}
BENCHMARK(BM_ParallelShapley)
    ->ArgsProduct({{16, 20}, {2, 4}})
    ->ArgNames({"n", "threads"});

void BM_EstimatorTick(benchmark::State& state) {
  // One full ShapleyVhcEstimator::estimate() call — the per-tick cost every
  // host agent pays. sym=1 duplicates states within each of the 4 VM types,
  // so the estimator takes the collapsed path; sym=0 forces distinct states
  // and times the batched mask sweep.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool symmetric = state.range(1) != 0;
  constexpr std::size_t kTypes = 4;

  vmp::util::Rng rng(7);
  vmp::core::VscTable table(kTypes, 0.01);
  const double law[kTypes] = {9.0, 7.0, 5.0, 3.0};
  for (vmp::core::VhcComboMask combo = 1; combo < (1u << kTypes); ++combo) {
    for (int s = 0; s < 120; ++s) {
      std::vector<vmp::common::StateVector> states(kTypes);
      double power = 0.0;
      for (std::size_t j = 0; j < kTypes; ++j) {
        if (((combo >> j) & 1u) == 0) continue;
        const double cpu = rng.uniform(0.0, 2.0);
        states[j] = vmp::common::StateVector::cpu_only(cpu);
        power += law[j] * cpu;
      }
      table.record(combo, states, power);
    }
  }
  const auto approx = vmp::core::VhcLinearApprox::fit(table);
  const vmp::core::VhcUniverse universe({0, 1, 2, 3});

  std::vector<vmp::core::VmSample> vms(n);
  for (std::size_t i = 0; i < n; ++i) {
    vms[i].vm_id = static_cast<std::uint32_t>(i);
    vms[i].type = static_cast<vmp::common::VmTypeId>(i % kTypes);
    vms[i].state = vmp::common::StateVector::cpu_only(
        symmetric ? 0.2 + 0.15 * static_cast<double>(i % kTypes)
                  : rng.uniform(0.05, 1.0));
  }

  vmp::core::ShapleyVhcEstimator estimator(universe, approx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(vms, 50.0));
  }
}
BENCHMARK(BM_EstimatorTick)
    ->ArgsProduct({{8, 12, 16}, {0, 1}})
    ->ArgNames({"n", "sym"});

// --- sampled tier ------------------------------------------------------------
//
// The same contention game stated in closed form, so it evaluates at any n
// up to kMaxSampledPlayers without a 2^n table — the all-distinct worst case
// where every exact kernel degenerates. Its Shapley value is also closed
// form (the game is a sum of one-player games a_i·1(i∈S)·f(|S|) with
// f(s) = 1 − 0.03(s−1)):
//
//   φ_i = a_i (1 − 0.03 (n−1)/2) − 0.015 (A − a_i),  A = Σ_j a_j,
//
// which gives every curve an exact error reference even at n = 64.
struct ClosedFormGame {
  std::vector<double> standalone;

  explicit ClosedFormGame(std::size_t n, std::uint64_t seed) : standalone(n) {
    vmp::util::Rng rng(seed);
    for (double& w : standalone) w = rng.uniform(5.0, 15.0);
  }

  [[nodiscard]] double worth(std::uint64_t members) const {
    double sum = 0.0;
    int count = 0;
    for (std::uint64_t m = members; m != 0; m &= m - 1) {
      sum += standalone[static_cast<std::size_t>(std::countr_zero(m))];
      ++count;
    }
    return count == 0 ? 0.0 : sum * (1.0 - 0.03 * (count - 1));
  }

  [[nodiscard]] std::vector<double> exact_shapley() const {
    const std::size_t n = standalone.size();
    const double total =
        std::accumulate(standalone.begin(), standalone.end(), 0.0);
    std::vector<double> phi(n);
    for (std::size_t i = 0; i < n; ++i)
      phi[i] = standalone[i] *
                   (1.0 - 0.03 * static_cast<double>(n - 1) / 2.0) -
               0.015 * (total - standalone[i]);
    return phi;
  }
};

void BM_SampledShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ClosedFormGame game(n, 42);
  const vmp::core::SampledWorthFn v = [&](std::uint64_t members) {
    return game.worth(members);
  };
  const std::uint64_t grand_mask = n == 64 ? ~0ULL : ((1ULL << n) - 1);
  const double grand = game.worth(grand_mask);
  vmp::core::SampledShapleyOptions options;
  options.max_samples = 20'000;
  vmp::core::SampledShapley solver;
  std::uint64_t tick = 0;
  for (auto _ : state) {
    options.seed = ++tick;
    benchmark::DoNotOptimize(solver.run(n, v, grand, options));
  }
}
BENCHMARK(BM_SampledShapley)->Arg(16)->Arg(32)->Arg(64);

void BM_EstimatorTickSampled(benchmark::State& state) {
  // The full per-tick estimator cost on the sampled tier: an all-distinct
  // host that auto mode would route here anyway at n > 16.
  const auto n = static_cast<std::size_t>(state.range(0));
  vmp::util::Rng rng(7);
  vmp::core::VscTable table(1, 0.01);
  for (int s = 0; s < 200; ++s) {
    const double cpu = rng.uniform(0.0, 2.0);
    table.record(0b1, {{vmp::common::StateVector::cpu_only(cpu)}}, 10.0 * cpu);
  }
  const auto approx = vmp::core::VhcLinearApprox::fit(table);

  std::vector<vmp::core::VmSample> vms(n);
  double total_cpu = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    vms[i].vm_id = static_cast<std::uint32_t>(i);
    vms[i].type = 0;
    const double cpu = 0.1 + 0.013 * static_cast<double>(i);
    vms[i].state = vmp::common::StateVector::cpu_only(cpu);
    total_cpu += cpu;
  }

  vmp::core::ShapleyVhcEstimator estimator(vmp::core::VhcUniverse({0}),
                                           approx);
  vmp::core::SampledKernelConfig config;
  config.kernel = vmp::core::SampledKernelConfig::Kernel::kSampled;
  config.sampling.max_samples = 20'000;
  estimator.set_sampled_kernel(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(vms, 10.0 * total_cpu));
  }
}
BENCHMARK(BM_EstimatorTickSampled)->Arg(16)->Arg(32)->Arg(64);

void BM_ShapleyWeights(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s)
      sum += vmp::core::shapley_weight(n, s);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ShapleyWeights)->Arg(16)->Arg(30);

void BM_SubsetEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Coalition grand = Coalition::grand(n);
  for (auto _ : state) {
    std::size_t count = 0;
    vmp::core::for_each_subset(grand, [&](Coalition) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->DenseRange(8, 20, 4);

// --- exact-vs-sampled curves (--sampled-curves) ------------------------------

double percentile50(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values.empty() ? 0.0 : values[values.size() / 2];
}

/// One row of the curve: accuracy and latency of the sampled tier at one n,
/// with the exact mask-solver latency where it is still tractable.
struct CurvePoint {
  std::size_t n = 0;
  std::size_t ticks = 0;
  double sampled_p50_ms = 0.0;
  double exact_p50_ms = -1.0;  ///< -1: exact intractable at this n.
  double mean_max_abs_err_w = 0.0;
  double mean_max_halfwidth_w = 0.0;
  double ci_coverage = 0.0;  ///< fraction of ticks with every VM inside CI.
  double mean_evals = 0.0;
};

CurvePoint run_curve_point(std::size_t n, std::size_t ticks) {
  const ClosedFormGame game(n, 42);
  const vmp::core::SampledWorthFn v = [&](std::uint64_t members) {
    return game.worth(members);
  };
  const std::uint64_t grand_mask = n == 64 ? ~0ULL : ((1ULL << n) - 1);
  const double grand = game.worth(grand_mask);
  const auto exact = game.exact_shapley();

  CurvePoint point;
  point.n = n;
  point.ticks = ticks;

  vmp::core::SampledShapleyOptions options;
  options.max_samples = 20'000;
  vmp::core::SampledShapley solver;
  std::vector<double> latencies_ms;
  std::size_t covered = 0;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    options.seed = 1000 * n + tick + 1;
    const auto start = std::chrono::steady_clock::now();
    const auto result = solver.run(n, v, grand, options);
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());

    double max_err = 0.0;
    bool inside = true;
    // The efficiency shift moves every player by at most gap/n, itself
    // inside sum_halfwidth/n — the same slack the tests allow.
    const double shift_slack =
        result.sum_halfwidth_w / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double err = std::abs(result.phi[i] - exact[i]);
      max_err = std::max(max_err, err);
      inside = inside && err <= result.halfwidth_w[i] + shift_slack;
    }
    covered += inside;
    point.mean_max_abs_err_w += max_err / static_cast<double>(ticks);
    point.mean_max_halfwidth_w +=
        result.max_halfwidth_w / static_cast<double>(ticks);
    point.mean_evals +=
        static_cast<double>(result.worth_evaluations) /
        static_cast<double>(ticks);
  }
  point.sampled_p50_ms = percentile50(latencies_ms);
  point.ci_coverage =
      static_cast<double>(covered) / static_cast<double>(ticks);

  // Exact reference latency: tractable through n = 20 (2^20 masks); past
  // that the whole point of the sampled tier is that exact never returns.
  if (n <= 20) {
    const vmp::core::WorthFn exact_v = [&](vmp::core::Coalition s) {
      return game.worth(s.mask());
    };
    std::vector<double> exact_ms;
    for (int rep = 0; rep < 3; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(vmp::core::shapley_values(n, exact_v));
      exact_ms.push_back(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
    }
    point.exact_p50_ms = percentile50(exact_ms);
  }
  return point;
}

int run_sampled_curves(bool quick, const std::string& out_path) {
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{8, 16, 32, 64}
            : std::vector<std::size_t>{8, 12, 16, 20, 24, 32, 48, 64};
  const std::size_t ticks = quick ? 6 : 20;

  std::string json = "{\n  \"sampled_curves\": [\n";
  char line[512];
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    const CurvePoint p = run_curve_point(sizes[k], ticks);
    char exact_field[48];
    if (p.exact_p50_ms < 0.0) {
      std::snprintf(exact_field, sizeof exact_field, "null");
    } else {
      std::snprintf(exact_field, sizeof exact_field, "%.6f", p.exact_p50_ms);
    }
    std::snprintf(
        line, sizeof line,
        "    {\"n\": %zu, \"ticks\": %zu, \"max_samples\": 20000, "
        "\"sampled_p50_ms\": %.6f, \"exact_p50_ms\": %s, "
        "\"mean_max_abs_err_w\": %.6f, \"mean_max_halfwidth_w\": %.6f, "
        "\"ci_coverage\": %.4f, \"mean_evals\": %.1f}%s\n",
        p.n, p.ticks, p.sampled_p50_ms, exact_field, p.mean_max_abs_err_w,
        p.mean_max_halfwidth_w, p.ci_coverage, p.mean_evals,
        k + 1 < sizes.size() ? "," : "");
    json += line;
    std::fprintf(stderr,
                 "n=%zu sampled_p50=%.3fms exact_p50=%sms err=%.4fW "
                 "halfwidth=%.4fW coverage=%.0f%%\n",
                 p.n, p.sampled_p50_ms, exact_field, p.mean_max_abs_err_w,
                 p.mean_max_halfwidth_w, 100.0 * p.ci_coverage);
  }
  json += "  ]\n}\n";

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(json.c_str(), file);
  std::fclose(file);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool curves = false;
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sampled-curves") == 0) {
      curves = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (curves) return run_sampled_curves(quick, out_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
