// Microbenchmarks for the paper's Sec. V-B complexity analysis.
//
// Exact Shapley needs 2^n worth evaluations; the paper argues n <= 16 on
// real hosts, so the overhead is "very low" (2^16 = 65536 operations). These
// benchmarks quantify that claim on this implementation and measure the two
// escape hatches for larger games: Monte-Carlo permutation sampling and the
// VHC estimator whose cost is 2^n table lookups but whose *measurement* cost
// is only 2^r.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "common/state_vector.hpp"
#include "core/estimator.hpp"
#include "core/linear_approx.hpp"
#include "core/monte_carlo.hpp"
#include "core/shapley.hpp"
#include "core/shapley_fast.hpp"
#include "core/vhc.hpp"
#include "core/vsc_table.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using vmp::core::Coalition;
using vmp::core::WorthFn;

// A synthetic sub-additive game of n players (cheap to evaluate, so the
// benchmark measures the Shapley machinery, not the worth function).
std::vector<double> make_game_table(std::size_t n, std::uint64_t seed) {
  vmp::util::Rng rng(seed);
  std::vector<double> standalone(n);
  for (double& w : standalone) w = rng.uniform(5.0, 15.0);
  std::vector<double> worth(std::size_t{1} << n, 0.0);
  for (std::size_t mask = 1; mask < worth.size(); ++mask) {
    double sum = 0.0;
    int members = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::size_t{1} << i)) {
        sum += standalone[i];
        ++members;
      }
    // 3 % pairwise contention decline.
    worth[mask] = sum * (1.0 - 0.03 * (members - 1));
  }
  return worth;
}

void BM_ExactShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto table = make_game_table(n, 42);
  const WorthFn v = [&](Coalition s) { return table[s.mask()]; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmp::core::shapley_values(n, v));
  }
  state.SetComplexityN(static_cast<std::int64_t>(1) << n);
}
BENCHMARK(BM_ExactShapley)->DenseRange(2, 16, 2)->Complexity(benchmark::oN);

void BM_MonteCarloShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto permutations = static_cast<std::size_t>(state.range(1));
  const auto table = make_game_table(n, 42);
  const WorthFn v = [&](Coalition s) { return table[s.mask()]; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vmp::core::monte_carlo_shapley(n, v, {.permutations = permutations}));
  }
}
BENCHMARK(BM_MonteCarloShapley)
    ->ArgsProduct({{8, 16, 24}, {100, 400}});

// --- fast kernels ------------------------------------------------------------
//
// The three accelerations from the metering hot path: symmetry-collapsed
// enumeration (compositions instead of masks when VMs duplicate), the
// thread-parallel mask sweep with deterministic reduction, and the
// estimator-level tick that stacks both on the batched worth evaluator.

vmp::core::SymmetryGroups make_groups(std::size_t n, std::size_t n_groups) {
  vmp::core::SymmetryGroups groups;
  groups.group_of.resize(n);
  groups.members.resize(n_groups);
  for (std::size_t i = 0; i < n; ++i) {
    groups.group_of[i] = i % n_groups;
    groups.members[i % n_groups].push_back(static_cast<vmp::core::Player>(i));
  }
  return groups;
}

void BM_CollapsedShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto types = static_cast<std::size_t>(state.range(1));
  const auto groups = make_groups(n, types);
  // Same game law as BM_ExactShapley, restated over groups so it is
  // symmetric within each: standalone sum with 3 % pairwise contention.
  vmp::util::Rng rng(42);
  std::vector<double> standalone(types);
  for (double& w : standalone) w = rng.uniform(5.0, 15.0);
  const WorthFn v = [&](Coalition s) {
    double sum = 0.0;
    int members = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (s.contains(static_cast<vmp::core::Player>(i))) {
        sum += standalone[groups.group_of[i]];
        ++members;
      }
    return members == 0 ? 0.0 : sum * (1.0 - 0.03 * (members - 1));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmp::core::shapley_values_grouped(groups, v));
  }
}
BENCHMARK(BM_CollapsedShapley)
    ->ArgsProduct({{8, 12, 16}, {2, 4}})
    ->ArgNames({"n", "types"});

void BM_ParallelShapley(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto table = make_game_table(n, 42);
  const WorthFn v = [&](Coalition s) { return table[s.mask()]; };
  vmp::util::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vmp::core::shapley_values_parallel(n, v, pool));
  }
}
BENCHMARK(BM_ParallelShapley)
    ->ArgsProduct({{16, 20}, {2, 4}})
    ->ArgNames({"n", "threads"});

void BM_EstimatorTick(benchmark::State& state) {
  // One full ShapleyVhcEstimator::estimate() call — the per-tick cost every
  // host agent pays. sym=1 duplicates states within each of the 4 VM types,
  // so the estimator takes the collapsed path; sym=0 forces distinct states
  // and times the batched mask sweep.
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool symmetric = state.range(1) != 0;
  constexpr std::size_t kTypes = 4;

  vmp::util::Rng rng(7);
  vmp::core::VscTable table(kTypes, 0.01);
  const double law[kTypes] = {9.0, 7.0, 5.0, 3.0};
  for (vmp::core::VhcComboMask combo = 1; combo < (1u << kTypes); ++combo) {
    for (int s = 0; s < 120; ++s) {
      std::vector<vmp::common::StateVector> states(kTypes);
      double power = 0.0;
      for (std::size_t j = 0; j < kTypes; ++j) {
        if (((combo >> j) & 1u) == 0) continue;
        const double cpu = rng.uniform(0.0, 2.0);
        states[j] = vmp::common::StateVector::cpu_only(cpu);
        power += law[j] * cpu;
      }
      table.record(combo, states, power);
    }
  }
  const auto approx = vmp::core::VhcLinearApprox::fit(table);
  const vmp::core::VhcUniverse universe({0, 1, 2, 3});

  std::vector<vmp::core::VmSample> vms(n);
  for (std::size_t i = 0; i < n; ++i) {
    vms[i].vm_id = static_cast<std::uint32_t>(i);
    vms[i].type = static_cast<vmp::common::VmTypeId>(i % kTypes);
    vms[i].state = vmp::common::StateVector::cpu_only(
        symmetric ? 0.2 + 0.15 * static_cast<double>(i % kTypes)
                  : rng.uniform(0.05, 1.0));
  }

  vmp::core::ShapleyVhcEstimator estimator(universe, approx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(vms, 50.0));
  }
}
BENCHMARK(BM_EstimatorTick)
    ->ArgsProduct({{8, 12, 16}, {0, 1}})
    ->ArgNames({"n", "sym"});

void BM_ShapleyWeights(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s)
      sum += vmp::core::shapley_weight(n, s);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ShapleyWeights)->Arg(16)->Arg(30);

void BM_SubsetEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Coalition grand = Coalition::grand(n);
  for (auto _ : state) {
    std::size_t count = 0;
    vmp::core::for_each_subset(grand, [&](Coalition) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->DenseRange(8, 20, 4);

}  // namespace

BENCHMARK_MAIN();
